#include "analysis/interproc.hpp"

#include "analysis/bounds.hpp"
#include "analysis/execution.hpp"
#include "frontend/const_fold.hpp"

#include <algorithm>

namespace ompdart {

VarDecl *argumentObject(const Expr *arg) {
  const Expr *stripped = ignoreParensAndCasts(arg);
  if (stripped == nullptr)
    return nullptr;
  if (VarDecl *var = referencedVar(stripped))
    return var;
  if (stripped->kind() == ExprKind::Unary) {
    const auto *unary = static_cast<const UnaryExpr *>(stripped);
    if (unary->op() == UnaryOp::AddrOf)
      return referencedVar(unary->operand());
  }
  if (stripped->kind() == ExprKind::Binary) {
    // Pointer arithmetic: `a + offset` exposes a.
    const auto *binary = static_cast<const BinaryExpr *>(stripped);
    if (binary->op() == BinaryOp::Add || binary->op() == BinaryOp::Sub) {
      VarDecl *lhs = referencedVar(binary->lhs());
      if (lhs != nullptr && isAggregateLike(lhs))
        return lhs;
      VarDecl *rhs = referencedVar(binary->rhs());
      if (rhs != nullptr && isAggregateLike(rhs))
        return rhs;
    }
  }
  if (stripped->kind() == ExprKind::ArraySubscript) {
    // Passing &a[i] or a row of a 2-D array exposes a.
    const Expr *base = stripped;
    while (base != nullptr && base->kind() == ExprKind::ArraySubscript)
      base = ignoreParensAndCasts(
          static_cast<const ArraySubscriptExpr *>(base)->base());
    return base != nullptr ? referencedVar(base) : nullptr;
  }
  return nullptr;
}

namespace {

/// Index of `var` in the function's parameter list, or -1.
int paramIndex(const FunctionDecl *fn, const VarDecl *var) {
  for (std::size_t i = 0; i < fn->params().size(); ++i)
    if (fn->params()[i] == var)
      return static_cast<int>(i);
  return -1;
}

ObjectEffect effectFromEvent(const AccessEvent &event) {
  ObjectEffect effect;
  const bool read = event.kind == AccessKind::Read ||
                    event.kind == AccessKind::ReadWrite ||
                    event.kind == AccessKind::Unknown;
  const bool write = event.kind == AccessKind::Write ||
                     event.kind == AccessKind::ReadWrite ||
                     event.kind == AccessKind::Unknown;
  if (event.onDevice) {
    effect.readDevice = read;
    effect.writeDevice = write;
  } else {
    effect.readHost = read;
    effect.writeHost = write;
  }
  effect.unknown = event.kind == AccessKind::Unknown;
  return effect;
}

} // namespace

json::Value ObjectEffect::toJson() const {
  json::Value doc = json::Value::object();
  doc.set("readHost", readHost);
  doc.set("writeHost", writeHost);
  doc.set("readDevice", readDevice);
  doc.set("writeDevice", writeDevice);
  doc.set("unknown", unknown);
  if (fullWriteBoundParam >= 0)
    doc.set("fullWriteBoundParam",
            static_cast<std::uint64_t>(fullWriteBoundParam));
  return doc;
}

ObjectEffect ObjectEffect::fromJson(const json::Value &value) {
  ObjectEffect effect;
  effect.readHost = value.boolOr("readHost");
  effect.writeHost = value.boolOr("writeHost");
  effect.readDevice = value.boolOr("readDevice");
  effect.writeDevice = value.boolOr("writeDevice");
  effect.unknown = value.boolOr("unknown");
  if (value.find("fullWriteBoundParam") != nullptr)
    effect.fullWriteBoundParam =
        static_cast<int>(value.uintOr("fullWriteBoundParam"));
  return effect;
}

std::string functionSignature(const FunctionDecl *fn) {
  std::string signature =
      fn->returnType() != nullptr ? fn->returnType()->spelling() : "int";
  signature += "(";
  for (std::size_t i = 0; i < fn->params().size(); ++i) {
    if (i > 0)
      signature += ", ";
    const VarDecl *param = fn->params()[i];
    signature += param->type() != nullptr ? param->type()->spelling() : "int";
  }
  signature += ")";
  return signature;
}

json::Value PortableSummary::toJson() const {
  json::Value doc = json::Value::object();
  doc.set("function", function);
  doc.set("signature", signature);
  doc.set("defined", defined);
  doc.set("launchesKernels", launchesKernels);
  json::Value paramsJson = json::Value::array();
  for (const ObjectEffect &effect : params)
    paramsJson.push(effect.toJson());
  doc.set("params", std::move(paramsJson));
  json::Value globalsJson = json::Value::object();
  // The in-memory map is id-keyed (interning order); the serialized form
  // must stay sorted by name so fingerprints and documents are stable
  // across processes with different interning histories.
  std::vector<std::pair<const std::string *, const ObjectEffect *>> sorted;
  sorted.reserve(globals.size());
  for (const auto &[sym, effect] : globals)
    sorted.emplace_back(&symbolName(sym), &effect);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto &a, const auto &b) { return *a.first < *b.first; });
  for (const auto &[name, effect] : sorted)
    globalsJson.set(*name, effect->toJson());
  doc.set("globals", std::move(globalsJson));
  return doc;
}

std::optional<PortableSummary>
PortableSummary::fromJson(const json::Value &value, std::string *error) {
  if (!value.isObject()) {
    json::setFirstError(error, "portable summary is not an object");
    return std::nullopt;
  }
  PortableSummary summary;
  summary.function = value.stringOr("function");
  if (summary.function.empty()) {
    json::setFirstError(error, "portable summary has no function name");
    return std::nullopt;
  }
  summary.signature = value.stringOr("signature");
  summary.defined = value.boolOr("defined");
  summary.launchesKernels = value.boolOr("launchesKernels");
  if (const json::Value *paramsJson = value.find("params"))
    for (const json::Value &item : paramsJson->items())
      summary.params.push_back(ObjectEffect::fromJson(item));
  if (const json::Value *globalsJson = value.find("globals"))
    for (const auto &[name, effectJson] : globalsJson->members())
      summary.globals[internSymbol(name)] = ObjectEffect::fromJson(effectJson);
  return summary;
}

PortableSummary portableSummaryOf(const FunctionSummary &summary) {
  PortableSummary portable;
  if (summary.function != nullptr) {
    portable.function = summary.function->name();
    portable.signature = functionSignature(summary.function);
    portable.defined = summary.function->isDefined();
  }
  portable.launchesKernels = summary.launchesKernels;
  portable.params = summary.params;
  // `static` globals have internal linkage: no other TU can name them, so
  // exporting their effects could only mis-bind onto an unrelated
  // same-named global elsewhere.
  for (const auto &[global, effect] : summary.globals)
    if (global != nullptr && !global->isStatic())
      portable.globals[internSymbol(global->name())].mergeFrom(effect);
  return portable;
}

FunctionSummary bindImportedSummary(const PortableSummary &portable,
                                    const FunctionDecl *fn,
                                    const TranslationUnit &unit) {
  FunctionSummary summary;
  summary.function = fn;
  summary.imported = true;
  summary.launchesKernels = portable.launchesKernels;
  summary.params.resize(fn->params().size());
  for (std::size_t i = 0;
       i < portable.params.size() && i < summary.params.size(); ++i)
    summary.params[i] = portable.params[i];
  for (const auto &[sym, effect] : portable.globals) {
    const std::string &name = symbolName(sym);
    for (VarDecl *global : unit.globals) {
      // A local `static` global is a different object than the externally
      // visible one the summary refers to — never bind onto it.
      if (global->isStatic())
        continue;
      if (global->name() == name) {
        summary.globals[global].mergeFrom(effect);
        break;
      }
    }
    // Globals this unit never declares are dropped: the unit cannot
    // reference them, so they cannot affect its mapping decisions.
  }
  return summary;
}

FunctionSummary externalSummary(const FunctionDecl *fn) {
  FunctionSummary summary;
  summary.function = fn;
  summary.isExternal = true;
  summary.params.resize(fn->params().size());
  for (std::size_t i = 0; i < fn->params().size(); ++i) {
    const VarDecl *param = fn->params()[i];
    const auto *pointer = dynamic_cast<const PointerType *>(param->type());
    if (pointer == nullptr)
      continue;
    ObjectEffect &effect = summary.params[i];
    effect.readHost = true;
    if (!pointer->isPointeeConst()) {
      effect.writeHost = true;
      effect.unknown = true;
    }
  }
  return summary;
}

/// The callee parameter whose value bounds a provable full host sweep
/// `param[0 .. bound)` performed by `event`, or -1. The ancestor chain
/// supplies the enclosing loops (hand-rolled; the summary layer has no
/// CFG at this point).
int fullSweepBoundParam(const FunctionDecl *fn, const AccessEvent &event,
                        const std::unordered_map<const Stmt *, const Stmt *>
                            &parents) {
  if (event.kind != AccessKind::Write || event.conditional ||
      event.onDevice || event.subscript == nullptr || event.stmt == nullptr)
    return -1;
  const Expr *index = ignoreParensAndCasts(event.subscript->index());
  VarDecl *indexVar = referencedVar(index);
  if (indexVar == nullptr)
    return -1;
  const Expr *base = ignoreParensAndCasts(event.subscript->base());
  if (base == nullptr || base->kind() == ExprKind::ArraySubscript)
    return -1; // multi-dimensional: be conservative
  for (const Stmt *cursor = event.stmt; cursor != nullptr;) {
    auto it = parents.find(cursor);
    cursor = it != parents.end() ? it->second : nullptr;
    const auto *forStmt = dynamic_cast<const ForStmt *>(cursor);
    if (forStmt == nullptr)
      continue;
    const LoopBounds bounds = analyzeForLoop(forStmt);
    if (!bounds.valid || bounds.inductionVar != indexVar)
      continue;
    if (bounds.step != 1 || !bounds.lowerConst || *bounds.lowerConst != 0 ||
        bounds.upperInclusiveAdjusted || bounds.upperExpr == nullptr)
      return -1;
    VarDecl *boundVar =
        referencedVar(ignoreParensAndCasts(bounds.upperExpr));
    return boundVar != nullptr ? paramIndex(fn, boundVar) : -1;
  }
  return -1;
}

FunctionSummary directFunctionSummary(const FunctionDecl *fn,
                                      const FunctionAccessInfo &info) {
  FunctionSummary summary;
  summary.function = fn;
  summary.params.resize(fn->params().size());
  std::unordered_map<const Stmt *, const Stmt *> parents;
  {
    ParentMap parentMap(fn);
    parents = parentMap.takeLinks();
  }
  for (const AccessEvent &event : info.events) {
    if (event.var == nullptr)
      continue;
    if (event.onDevice)
      summary.launchesKernels = true;
    if (event.var->isGlobal()) {
      summary.globals[event.var].mergeFrom(effectFromEvent(event));
      continue;
    }
    const int index = paramIndex(fn, event.var);
    if (index < 0)
      continue;
    // Only pointee accesses of pointer parameters are externally visible;
    // by-value parameters (scalars, structs) are local copies.
    if (event.var->type()->isPointer() && event.pointeeAccess) {
      ObjectEffect effect = effectFromEvent(event);
      if (effect.writeHost && !effect.unknown)
        effect.fullWriteBoundParam = fullSweepBoundParam(fn, event, parents);
      summary.params[static_cast<std::size_t>(index)].mergeFrom(effect);
    }
  }
  return summary;
}

std::unordered_map<const FunctionDecl *, FunctionSummary>
computeFunctionSummaries(
    const TranslationUnit &unit,
    const std::unordered_map<const FunctionDecl *, FunctionAccessInfo>
        &baseAccesses,
    InterproceduralOptions options, unsigned *passesOut) {
  std::unordered_map<const FunctionDecl *, FunctionSummary> summaries;

  // Base: defined functions start empty (the fixed point fills them);
  // bodiless functions take their imported cross-TU summary when one is
  // available, the pessimistic external rule otherwise.
  for (const FunctionDecl *fn : unit.functions) {
    if (fn->isDefined()) {
      summaries[fn] = FunctionSummary{};
    } else {
      const PortableSummary *imported = nullptr;
      if (options.importedSummaries != nullptr) {
        auto it = options.importedSummaries->find(fn->name());
        if (it != options.importedSummaries->end())
          imported = &it->second;
      }
      summaries[fn] = imported != nullptr
                          ? bindImportedSummary(*imported, fn, unit)
                          : externalSummary(fn);
    }
    summaries[fn].function = fn;
  }

  // Fixed point: recompute each defined function's summary from its events
  // plus current callee summaries until nothing changes.
  unsigned passes = 0;
  for (unsigned pass = 0; pass < options.maxPasses; ++pass) {
    ++passes;
    bool changed = false;
    for (const FunctionDecl *fn : unit.functions) {
      if (!fn->isDefined())
        continue;
      auto baseIt = baseAccesses.find(fn);
      if (baseIt == baseAccesses.end())
        continue;
      const FunctionAccessInfo &info = baseIt->second;
      FunctionSummary summary = directFunctionSummary(fn, info);

      for (const CallSite &site : info.callSites) {
        const FunctionDecl *callee = site.call->callee();
        if (callee == nullptr)
          continue;
        const FunctionSummary &calleeSummary = summaries[callee];
        summary.launchesKernels |= calleeSummary.launchesKernels;
        // Map callee parameter effects onto caller objects.
        const auto &args = site.call->args();
        for (std::size_t i = 0;
             i < calleeSummary.params.size() && i < args.size(); ++i) {
          ObjectEffect effect = calleeSummary.params[i];
          if (!effect.any())
            continue;
          // The coverage bound indexes the CALLEE's parameters; it does
          // not survive re-attribution to this function's objects unless
          // the bound argument is itself one of this function's params
          // passed straight through.
          if (effect.fullWriteBoundParam >= 0) {
            const std::size_t bound =
                static_cast<std::size_t>(effect.fullWriteBoundParam);
            VarDecl *boundVar =
                bound < args.size()
                    ? referencedVar(ignoreParensAndCasts(args[bound]))
                    : nullptr;
            effect.fullWriteBoundParam =
                boundVar != nullptr ? paramIndex(fn, boundVar) : -1;
          }
          VarDecl *object = argumentObject(args[i]);
          if (object == nullptr)
            continue;
          if (object->isGlobal()) {
            summary.globals[object].mergeFrom(effect);
            continue;
          }
          const int index = paramIndex(fn, object);
          if (index >= 0)
            summary.params[static_cast<std::size_t>(index)].mergeFrom(effect);
          // Effects on locals stay local; the augmentation step below still
          // surfaces them at the call site.
        }
        for (const auto &[global, effect] : calleeSummary.globals)
          summary.globals[global].mergeFrom(effect);
      }

      if (!(summaries[fn] == summary)) {
        // Preserve the base flags (the fixed point only recomputes effects).
        summary.isExternal = summaries[fn].isExternal;
        summary.imported = summaries[fn].imported;
        summaries[fn] = std::move(summary);
        changed = true;
      }
    }
    if (!changed)
      break;
  }
  if (passesOut != nullptr)
    *passesOut = passes;
  return summaries;
}

std::unordered_map<const FunctionDecl *, FunctionAccessInfo>
augmentCallSiteAccesses(
    const std::unordered_map<const FunctionDecl *, FunctionAccessInfo>
        &baseAccesses,
    const std::unordered_map<const FunctionDecl *, FunctionSummary>
        &summaries) {
  std::unordered_map<const FunctionDecl *, FunctionAccessInfo> accesses;
  for (const auto &[fn, info] : baseAccesses) {
    FunctionAccessInfo augmented = info;
    for (const CallSite &site : info.callSites) {
      const FunctionDecl *callee = site.call->callee();
      if (callee == nullptr)
        continue;
      auto summaryIt = summaries.find(callee);
      if (summaryIt == summaries.end())
        continue;
      const FunctionSummary &calleeSummary = summaryIt->second;

      auto synthesize = [&](VarDecl *object, const ObjectEffect &effect,
                            bool fullCoverage) {
        if (object == nullptr || !effect.any())
          return;
        auto add = [&](AccessKind kind, bool onDevice) {
          AccessEvent event;
          event.var = object;
          event.kind = kind;
          event.onDevice = onDevice || site.onDevice;
          event.kernel = site.kernel;
          event.stmt = site.stmt;
          event.fromCall = true;
          event.pointeeAccess = true;
          event.provenFullCoverage =
              fullCoverage && kind == AccessKind::Write && !event.onDevice;
          augmented.events.push_back(event);
          augmented.byStmt[site.stmt].push_back(event);
        };
        if (effect.unknown) {
          add(AccessKind::Unknown, effect.readDevice || effect.writeDevice);
          return;
        }
        if (effect.readHost)
          add(AccessKind::Read, false);
        if (effect.readDevice)
          add(AccessKind::Read, true);
        if (effect.writeHost)
          add(AccessKind::Write, false);
        if (effect.writeDevice)
          add(AccessKind::Write, true);
      };

      // The callee's full-sweep bound proves a kill at this site when the
      // bound argument's constant equals the (directly passed) array's
      // whole extent.
      auto provesFullCoverage = [&](const ObjectEffect &effect,
                                    const Expr *objectArg) {
        if (effect.fullWriteBoundParam < 0)
          return false;
        const auto &callArgs = site.call->args();
        const std::size_t bound =
            static_cast<std::size_t>(effect.fullWriteBoundParam);
        if (bound >= callArgs.size())
          return false;
        const std::optional<std::int64_t> count =
            foldIntegerConstant(callArgs[bound]);
        if (!count || *count <= 0)
          return false;
        // The object must be passed from element 0 (a bare array/pointer
        // name, not `a + k` or `&a[k]`).
        VarDecl *direct = referencedVar(ignoreParensAndCasts(objectArg));
        if (direct == nullptr || !direct->type()->isArray())
          return false;
        const auto *arrayType =
            static_cast<const ArrayType *>(direct->type());
        return arrayType->extent() &&
               *arrayType->extent() ==
                   static_cast<std::uint64_t>(*count);
      };

      const auto &args = site.call->args();
      for (std::size_t i = 0;
           i < calleeSummary.params.size() && i < args.size(); ++i)
        synthesize(argumentObject(args[i]), calleeSummary.params[i],
                   provesFullCoverage(calleeSummary.params[i], args[i]));
      // Declaration order: the synthesized event order feeds the planner's
      // validity walk, so it must not depend on pointer ordering.
      std::vector<VarDecl *> globals;
      globals.reserve(calleeSummary.globals.size());
      for (const auto &[global, effect] : calleeSummary.globals)
        globals.push_back(global);
      std::sort(globals.begin(), globals.end(), varDeclBefore);
      for (VarDecl *global : globals)
        synthesize(global, calleeSummary.globals.at(global),
                   /*fullCoverage=*/false);
    }
    accesses[fn] = std::move(augmented);
  }
  return accesses;
}

InterproceduralResult
runInterproceduralAnalysis(const TranslationUnit &unit,
                           InterproceduralOptions options) {
  InterproceduralResult result;

  // Base access collection (intra-procedural only).
  std::unordered_map<const FunctionDecl *, FunctionAccessInfo> baseAccesses;
  for (const FunctionDecl *fn : unit.functions)
    if (fn->isDefined())
      baseAccesses[fn] = collectAccesses(fn);

  result.summaries =
      computeFunctionSummaries(unit, baseAccesses, options, &result.passes);
  result.accesses = augmentCallSiteAccesses(baseAccesses, result.summaries);
  return result;
}

} // namespace ompdart
