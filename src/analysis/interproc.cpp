#include "analysis/interproc.hpp"

#include <algorithm>

namespace ompdart {

namespace {

/// Resolves which caller variable a call argument exposes to the callee
/// (pointer passing, array decay, &scalar). Returns null when the argument
/// does not name a trackable object.
VarDecl *argumentObject(const Expr *arg) {
  const Expr *stripped = ignoreParensAndCasts(arg);
  if (stripped == nullptr)
    return nullptr;
  if (VarDecl *var = referencedVar(stripped))
    return var;
  if (stripped->kind() == ExprKind::Unary) {
    const auto *unary = static_cast<const UnaryExpr *>(stripped);
    if (unary->op() == UnaryOp::AddrOf)
      return referencedVar(unary->operand());
  }
  if (stripped->kind() == ExprKind::Binary) {
    // Pointer arithmetic: `a + offset` exposes a.
    const auto *binary = static_cast<const BinaryExpr *>(stripped);
    if (binary->op() == BinaryOp::Add || binary->op() == BinaryOp::Sub) {
      VarDecl *lhs = referencedVar(binary->lhs());
      if (lhs != nullptr && isAggregateLike(lhs))
        return lhs;
      VarDecl *rhs = referencedVar(binary->rhs());
      if (rhs != nullptr && isAggregateLike(rhs))
        return rhs;
    }
  }
  if (stripped->kind() == ExprKind::ArraySubscript) {
    // Passing &a[i] or a row of a 2-D array exposes a.
    const Expr *base = stripped;
    while (base != nullptr && base->kind() == ExprKind::ArraySubscript)
      base = ignoreParensAndCasts(
          static_cast<const ArraySubscriptExpr *>(base)->base());
    return base != nullptr ? referencedVar(base) : nullptr;
  }
  return nullptr;
}

/// Index of `var` in the function's parameter list, or -1.
int paramIndex(const FunctionDecl *fn, const VarDecl *var) {
  for (std::size_t i = 0; i < fn->params().size(); ++i)
    if (fn->params()[i] == var)
      return static_cast<int>(i);
  return -1;
}

ObjectEffect effectFromEvent(const AccessEvent &event) {
  ObjectEffect effect;
  const bool read = event.kind == AccessKind::Read ||
                    event.kind == AccessKind::ReadWrite ||
                    event.kind == AccessKind::Unknown;
  const bool write = event.kind == AccessKind::Write ||
                     event.kind == AccessKind::ReadWrite ||
                     event.kind == AccessKind::Unknown;
  if (event.onDevice) {
    effect.readDevice = read;
    effect.writeDevice = write;
  } else {
    effect.readHost = read;
    effect.writeHost = write;
  }
  effect.unknown = event.kind == AccessKind::Unknown;
  return effect;
}

/// Pessimistic summary for a function whose body is not visible. `const T*`
/// parameters are read-only; all other pointer parameters may be read and
/// written on the host (the paper's rule for cross-TU functions).
FunctionSummary externalSummary(const FunctionDecl *fn) {
  FunctionSummary summary;
  summary.function = fn;
  summary.isExternal = true;
  summary.params.resize(fn->params().size());
  for (std::size_t i = 0; i < fn->params().size(); ++i) {
    const VarDecl *param = fn->params()[i];
    const auto *pointer = dynamic_cast<const PointerType *>(param->type());
    if (pointer == nullptr)
      continue;
    ObjectEffect &effect = summary.params[i];
    effect.readHost = true;
    if (!pointer->isPointeeConst()) {
      effect.writeHost = true;
      effect.unknown = true;
    }
  }
  return summary;
}

} // namespace

InterproceduralResult
runInterproceduralAnalysis(const TranslationUnit &unit,
                           InterproceduralOptions options) {
  InterproceduralResult result;

  // Base access collection (intra-procedural only).
  std::unordered_map<const FunctionDecl *, FunctionAccessInfo> baseAccesses;
  for (const FunctionDecl *fn : unit.functions) {
    if (fn->isDefined())
      baseAccesses[fn] = collectAccesses(fn);
    result.summaries[fn] =
        fn->isDefined() ? FunctionSummary{} : externalSummary(fn);
    result.summaries[fn].function = fn;
  }

  // Fixed point: recompute each defined function's summary from its events
  // plus current callee summaries until nothing changes.
  for (unsigned pass = 0; pass < options.maxPasses; ++pass) {
    ++result.passes;
    bool changed = false;
    for (const FunctionDecl *fn : unit.functions) {
      if (!fn->isDefined())
        continue;
      const FunctionAccessInfo &info = baseAccesses[fn];
      FunctionSummary summary;
      summary.function = fn;
      summary.params.resize(fn->params().size());

      for (const AccessEvent &event : info.events) {
        if (event.var == nullptr)
          continue;
        if (event.onDevice)
          summary.launchesKernels = true;
        if (event.var->isGlobal()) {
          summary.globals[event.var].mergeFrom(effectFromEvent(event));
          continue;
        }
        const int index = paramIndex(fn, event.var);
        if (index < 0)
          continue;
        // Only pointee accesses of pointer parameters are externally
        // visible; by-value parameters (scalars, structs) are local copies.
        if (event.var->type()->isPointer() && event.pointeeAccess)
          summary.params[static_cast<std::size_t>(index)].mergeFrom(
              effectFromEvent(event));
      }

      for (const CallSite &site : info.callSites) {
        const FunctionDecl *callee = site.call->callee();
        if (callee == nullptr)
          continue;
        const FunctionSummary &calleeSummary = result.summaries[callee];
        summary.launchesKernels |= calleeSummary.launchesKernels;
        // Map callee parameter effects onto caller objects.
        const auto &args = site.call->args();
        for (std::size_t i = 0;
             i < calleeSummary.params.size() && i < args.size(); ++i) {
          const ObjectEffect &effect = calleeSummary.params[i];
          if (!effect.any())
            continue;
          VarDecl *object = argumentObject(args[i]);
          if (object == nullptr)
            continue;
          if (object->isGlobal()) {
            summary.globals[object].mergeFrom(effect);
            continue;
          }
          const int index = paramIndex(fn, object);
          if (index >= 0)
            summary.params[static_cast<std::size_t>(index)].mergeFrom(effect);
          // Effects on locals stay local; the augmentation step below still
          // surfaces them at the call site.
        }
        for (const auto &[global, effect] : calleeSummary.globals)
          summary.globals[global].mergeFrom(effect);
      }

      if (!(result.summaries[fn] == summary)) {
        result.summaries[fn] = std::move(summary);
        changed = true;
      }
    }
    if (!changed)
      break;
  }

  // Augmentation: synthesize call-site events so the data-flow walk sees
  // callee side effects inline.
  for (auto &[fn, info] : baseAccesses) {
    FunctionAccessInfo augmented = info;
    for (const CallSite &site : info.callSites) {
      const FunctionDecl *callee = site.call->callee();
      if (callee == nullptr)
        continue;
      const FunctionSummary &calleeSummary = result.summaries[callee];

      auto synthesize = [&](VarDecl *object, const ObjectEffect &effect) {
        if (object == nullptr || !effect.any())
          return;
        auto add = [&](AccessKind kind, bool onDevice) {
          AccessEvent event;
          event.var = object;
          event.kind = kind;
          event.onDevice = onDevice || site.onDevice;
          event.kernel = site.kernel;
          event.stmt = site.stmt;
          event.fromCall = true;
          event.pointeeAccess = true;
          augmented.events.push_back(event);
          augmented.byStmt[site.stmt].push_back(event);
        };
        if (effect.unknown) {
          add(AccessKind::Unknown, effect.readDevice || effect.writeDevice);
          return;
        }
        if (effect.readHost)
          add(AccessKind::Read, false);
        if (effect.readDevice)
          add(AccessKind::Read, true);
        if (effect.writeHost)
          add(AccessKind::Write, false);
        if (effect.writeDevice)
          add(AccessKind::Write, true);
      };

      const auto &args = site.call->args();
      for (std::size_t i = 0;
           i < calleeSummary.params.size() && i < args.size(); ++i)
        synthesize(argumentObject(args[i]), calleeSummary.params[i]);
      // Declaration order: the synthesized event order feeds the planner's
      // validity walk, so it must not depend on pointer ordering.
      std::vector<VarDecl *> globals;
      globals.reserve(calleeSummary.globals.size());
      for (const auto &[global, effect] : calleeSummary.globals)
        globals.push_back(global);
      std::sort(globals.begin(), globals.end(), varDeclBefore);
      for (VarDecl *global : globals)
        synthesize(global, calleeSummary.globals.at(global));
    }
    result.accesses[fn] = std::move(augmented);
  }
  return result;
}

} // namespace ompdart
