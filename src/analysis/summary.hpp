// Whole-program summary artifacts and the cross-TU link (paper §IV-C at
// project scope).
//
// A `ModuleSummary` is the serialized, JSON-round-trippable analysis
// artifact of one translation unit: per-function *direct* effects (no call
// propagation), every call edge with its provable trip weight and argument
// bindings, and the prototypes the unit merely declares. The artifact is a
// pure function of the TU's source text, so it caches by source hash.
//
// `linkProgram` runs the §IV-C fixed point over a set of ModuleSummaries
// with no ASTs in sight: direct effects are closed over the whole-program
// call graph (external callees fall back to the paper's pessimistic rule),
// execution counts come from the shared estimator in analysis/execution,
// and per-parameter call-site facts (folded constants, argument extents,
// site locations) are aggregated so a TU's planner can resolve symbolic
// extents through call sites that live in *other* files.
//
// `TuImports` is the per-TU slice of a link result a Session consumes:
// closed summaries for functions the TU does not define, whole-program
// execution counts, and external call-site facts for the functions it does
// define. Its fingerprint feeds the plan-cache key, so editing one TU
// re-plans only the TUs whose imports actually changed.
#pragma once

#include "analysis/interproc.hpp"
#include "support/diagnostics.hpp"
#include "support/json.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ompdart::summary {

/// How one call argument exposes a caller object to the callee.
struct ArgBinding {
  enum class Kind { None, Param, Global };
  Kind kind = Kind::None;
  int paramIndex = -1; ///< caller parameter index when kind == Param
  /// Interned caller global name when kind == Global (spelled out in JSON),
  /// so the link fixed point merges effects under integer keys.
  SymbolId global = 0;
  /// Static facts about the argument expression (for cross-TU extent and
  /// constant propagation into the callee's planner).
  bool isPointerArg = false;
  bool pointeeConst = false;
  std::optional<std::int64_t> constValue;
  bool extentKnown = false;
  std::optional<std::uint64_t> extentConstElems;
  std::string extentSpelling;

  [[nodiscard]] bool operator==(const ArgBinding &other) const;
  [[nodiscard]] json::Value toJson() const;
  [[nodiscard]] static ArgBinding fromJson(const json::Value &value);
};

/// One call site recorded in a module summary.
struct CallEdge {
  std::string callee;
  bool onDevice = false;
  /// Provable trips of unguarded loops enclosing the site (floor 1).
  std::uint64_t provableTrips = 1;
  /// A conditional ancestor makes repetition unprovable (floor of one).
  bool guarded = false;
  unsigned line = 0; ///< 1-based source line of the call statement
  std::vector<ArgBinding> args;

  [[nodiscard]] bool operator==(const CallEdge &other) const;
  [[nodiscard]] json::Value toJson() const;
  [[nodiscard]] static CallEdge fromJson(const json::Value &value);
};

/// Summary of one function a module defines: direct effects + call edges.
struct FunctionArtifact {
  PortableSummary direct; ///< intra-procedural effects only
  std::vector<CallEdge> calls;

  [[nodiscard]] bool operator==(const FunctionArtifact &other) const {
    return direct == other.direct && calls == other.calls;
  }
  [[nodiscard]] json::Value toJson() const;
  [[nodiscard]] static std::optional<FunctionArtifact>
  fromJson(const json::Value &value, std::string *error = nullptr);
};

/// A prototype the module declares without defining (linked against the
/// defining module's signature at link time).
struct ExternRef {
  std::string function;
  std::string signature;
  unsigned line = 0;

  [[nodiscard]] bool operator==(const ExternRef &other) const {
    return function == other.function && signature == other.signature &&
           line == other.line;
  }
};

/// The serialized analysis artifact of one translation unit.
struct ModuleSummary {
  static constexpr unsigned kVersion = 1;

  std::string file;
  std::vector<FunctionArtifact> functions; ///< defined functions
  std::vector<ExternRef> externs;          ///< declared-only prototypes

  [[nodiscard]] const FunctionArtifact *
  find(const std::string &name) const {
    for (const FunctionArtifact &fn : functions)
      if (fn.direct.function == name)
        return &fn;
    return nullptr;
  }

  [[nodiscard]] bool operator==(const ModuleSummary &other) const {
    return file == other.file && functions == other.functions &&
           externs == other.externs;
  }

  [[nodiscard]] json::Value toJson() const;
  [[nodiscard]] static std::optional<ModuleSummary>
  fromJson(const json::Value &value, std::string *error = nullptr);
  /// Stable content fingerprint over the canonical serialization *minus*
  /// the file label (and the file-qualified prefix of static-function
  /// linked names): two TUs with identical analysis facts fingerprint
  /// equal, so renaming (or whitespace-editing) a file does not invalidate
  /// its dependents' imports.
  [[nodiscard]] std::string fingerprint() const;
  /// Re-labels the artifact as belonging to `newFile`: updates `file` and
  /// rewrites the old file-qualified prefix of static-function linked
  /// names (and call edges to them). Cached summaries are content-keyed,
  /// so a hit may carry the path the artifact was first extracted under —
  /// the facts are path-independent, the labels must follow the consumer.
  void rebindFile(const std::string &newFile);
};

/// Extracts the module summary of a parsed translation unit.
[[nodiscard]] ModuleSummary
extractModuleSummary(const TranslationUnit &unit, const std::string &file);

/// One external call-site record for a (function, parameter) pair.
struct ParamCallFact {
  std::string callerFile;
  unsigned line = 0;
  bool tracked = false; ///< argument named a trackable object / constant
  std::optional<std::int64_t> constValue;
  bool extentKnown = false;
  std::optional<std::uint64_t> extentConstElems;
  std::string extentSpelling;
};

struct LinkOptions {
  /// Cap on link-level fixed-point passes (whole-program call depth).
  unsigned maxPasses = 32;
};

/// Result of linking a set of module summaries into one program.
struct LinkResult {
  /// Closed (call-propagated) summaries per function name.
  std::map<std::string, PortableSummary> closed;
  /// Whole-program execution estimates per function name.
  std::map<std::string, std::uint64_t> executions;
  /// External call-site facts: function name -> per-parameter records from
  /// *all* modules' call sites.
  std::map<std::string, std::vector<std::vector<ParamCallFact>>> paramFacts;
  /// File defining each function (diagnostics, TU scheduling).
  std::map<std::string, std::string> definedIn;
  /// Functions whose declared signature mismatched their definition, per
  /// declaring file: these stay pessimistic in that file's imports.
  std::map<std::string, std::set<std::string>> signatureMismatches;
  /// Link-level diagnostics (signature mismatches, duplicate definitions).
  std::vector<Diagnostic> diagnostics;
  /// Number of link fixed-point passes performed.
  unsigned passes = 0;
};

/// Links module summaries: whole-program §IV-C fixed point + execution
/// estimation + call-site fact aggregation.
[[nodiscard]] LinkResult
linkProgram(const std::vector<ModuleSummary> &modules, LinkOptions options = {});

/// The per-TU slice of a link result a pipeline Session consumes.
struct TuImports {
  /// Closed summaries for signature-matching functions NOT defined in this
  /// TU (consumed by the interprocedural pass for bodiless callees).
  std::map<std::string, PortableSummary> externals;
  /// Whole-program execution estimates for every linked function (consumed
  /// by the planner's entry-count/update-execution estimator).
  std::map<std::string, std::uint64_t> executions;
  /// External call-site facts for functions this TU defines, indexed
  /// [function][paramIndex] (consumed by symbolic extent resolution).
  std::map<std::string, std::vector<std::vector<ParamCallFact>>> paramFacts;

  [[nodiscard]] bool empty() const {
    return externals.empty() && executions.empty() && paramFacts.empty();
  }
  [[nodiscard]] json::Value toJson() const;
  /// Content fingerprint over the canonical serialization — the
  /// plan-cache key component that makes a TU's cached plan sensitive to
  /// its imports and nothing else.
  [[nodiscard]] std::string fingerprint() const;
};

/// Builds the import slice for one module from a link result.
[[nodiscard]] TuImports
buildTuImports(const ModuleSummary &module, const LinkResult &link);

/// Schedules modules in reverse topological call-graph order (callees
/// before callers; ties and cycles broken by input order). Returns indices
/// into `modules`.
[[nodiscard]] std::vector<std::size_t>
reverseTopologicalOrder(const std::vector<ModuleSummary> &modules);

} // namespace ompdart::summary
