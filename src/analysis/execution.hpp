// Shared execution-count machinery (paper §IV-C / PR 3 estimator).
//
// Provable execution estimates appear in three places that must agree
// exactly: the planner's region entry counts and update executions, the
// per-TU call-graph seeding, and the Project layer's whole-program link
// (which runs the same estimator over serialized summaries instead of
// ASTs). This header is the single implementation all of them use:
//
//   ParentMap              child->parent statement links for one function
//   provableMultiplierOf   product of constant trips of unguarded loop
//                          ancestors (guarded = any if/switch ancestor)
//   WeightedCallGraph      name-keyed call graph with per-edge provable
//                          trip weights, AST-free (buildable from either a
//                          parsed unit or serialized module summaries)
//   estimateExecutions     exec(F) = seed(F) + sum(exec(caller) * trips)
//                          via memoized DFS; cycles contribute the floor
// All counts saturate at 2^40 ("executes a lot").
#pragma once

#include "frontend/ast.hpp"
#include "support/intern.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ompdart {

/// Builds child-statement -> parent-statement links for a function body.
class ParentMap {
public:
  explicit ParentMap(const FunctionDecl *fn);

  /// Surrenders the child->parent map (the ParentMap is spent afterwards).
  [[nodiscard]] std::unordered_map<const Stmt *, const Stmt *> takeLinks();

private:
  void visit(const Stmt *stmt, const Stmt *parent);

  std::unordered_map<const Stmt *, const Stmt *> parents_;
};

[[nodiscard]] bool isLoopStmt(const Stmt *stmt);
[[nodiscard]] bool isConditionalStmt(const Stmt *stmt);

/// Saturating multiply for execution-count estimates (cap 2^40).
[[nodiscard]] std::uint64_t saturatingMul(std::uint64_t a, std::uint64_t b);

/// Constant trips of one loop; 1 (the provable floor per execution of the
/// surrounding context) when the bounds defeat analysis.
[[nodiscard]] std::uint64_t loopTripsOrOne(const Stmt *loop);

/// Provable per-function-execution multiplier for a statement: the product
/// of constant trips of unguarded loop ancestors. Any conditional ancestor
/// (if/switch) makes repetition unprovable — the statement may run zero
/// times per iteration — so the walk reports guarded and the caller
/// charges the floor of one instead.
struct ProvableMultiplier {
  std::uint64_t trips = 1;
  bool guarded = false;
};
[[nodiscard]] ProvableMultiplier provableMultiplierOf(
    const std::unordered_map<const Stmt *, const Stmt *> &parents,
    const Stmt *site, std::size_t minBeginOffset = 0);

/// Name-keyed, AST-free call graph with provable edge weights. Built from a
/// translation unit's call sites (planner) or from serialized module
/// summaries (Project link); both feed the same estimator so per-TU and
/// whole-program execution counts cannot diverge. Names are interned on
/// insertion so the estimator's memoized DFS hashes and compares integer
/// ids, not strings.
struct WeightedCallGraph {
  struct Edge {
    SymbolId caller = 0;
    std::uint64_t trips = 1;
    bool guarded = false;
  };
  /// Host-side caller edges per callee.
  std::unordered_map<SymbolId, std::vector<Edge>> callersOf;
  /// Every callee any analyzed call site targets (host or device): such
  /// functions are not program entries.
  std::unordered_set<SymbolId> called;
  /// All functions to produce estimates for, in insertion order.
  /// Order matters: it decides where the memoized DFS cuts call-graph
  /// cycles, so it must stay the declaration order the planner always
  /// used (the link inserts in manifest × declaration order, which
  /// degenerates to the same thing for one TU).
  std::vector<SymbolId> functions;

  void addFunction(SymbolId sym) {
    if (known_.insert(sym).second)
      functions.push_back(sym);
  }
  void addFunction(const std::string &name) { addFunction(internSymbol(name)); }
  void addCall(const std::string &caller, const std::string &callee,
               std::uint64_t trips, bool guarded, bool onDevice) {
    const SymbolId calleeSym = internSymbol(callee);
    called.insert(calleeSym);
    addFunction(calleeSym);
    if (onDevice)
      return;
    Edge edge;
    edge.caller = internSymbol(caller);
    edge.trips = trips;
    edge.guarded = guarded;
    callersOf[calleeSym].push_back(edge);
  }

private:
  std::unordered_set<SymbolId> known_;
};

/// exec(F) = seed(F) + sum over callers of exec(caller) * trips, where
/// functions no call site targets (and `main`) seed at one. Evaluated by
/// memoized DFS; recursive back-edges contribute 0 (the extra executions a
/// cycle implies are not statically provable — this estimate is a provable
/// floor). Guarded edges contribute the floor of one call total.
[[nodiscard]] std::map<std::string, std::uint64_t>
estimateExecutions(const WeightedCallGraph &graph);

} // namespace ompdart
