// Array-bounds and loop-structure analysis (paper §IV-E).
//
// Extends the Guo et al. compile-time bounds algorithm to multi-dimensional
// arrays and nested loops, and implements the paper's Algorithm 1
// (FIND_UPDATE_INSERT_LOC) for hoisting `target update` directives out of
// loops whose induction variables participate in the array's subscript.
#pragma once

#include "analysis/access.hpp"
#include "frontend/ast.hpp"
#include "support/source_location.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ompdart {

/// Normalized description of a canonical `for` loop. Only unit-stride loops
/// with a recognizable induction variable are considered analyzable; the
/// paper notes that missing/complex init, cond or inc statements impede the
/// analysis, which this struct reports via `valid`.
struct LoopBounds {
  bool valid = false;
  VarDecl *inductionVar = nullptr;
  const Expr *lowerExpr = nullptr; ///< Initial value.
  std::optional<std::int64_t> lowerConst;
  /// Exclusive upper bound (normalized: `i <= n` becomes `n + 1` with
  /// upperInclusiveAdjusted set).
  const Expr *upperExpr = nullptr;
  std::optional<std::int64_t> upperConst;
  bool upperInclusiveAdjusted = false;
  int step = 1; ///< +1 or -1.
};

/// Recognizes init/cond/inc of a `for` statement (paper Listing 5 walk).
[[nodiscard]] LoopBounds analyzeForLoop(const ForStmt *loop);

/// The induction variable of a loop statement, or null when the loop is not
/// an analyzable `for` (paper: while/do yield "not a valid variable").
[[nodiscard]] VarDecl *findIndexingVar(const Stmt *loop);

/// All variables referenced anywhere in the (multi-dimensional) subscript
/// chain of an array access.
[[nodiscard]] std::vector<VarDecl *>
referencedIndexVars(const ArraySubscriptExpr *access);

/// Paper Algorithm 1. `loops` is the stack of loops enclosing the access,
/// outermost first. `locLim` is a source location the insertion must not
/// precede (typically the end of the producing kernel). Returns the
/// statement the update directive should directly precede (from-direction)
/// or follow (to-direction): either `anchor` itself or an enclosing loop.
[[nodiscard]] const Stmt *
findUpdateInsertLoc(const ArraySubscriptExpr *access, const Stmt *anchor,
                    const std::vector<const Stmt *> &loops,
                    SourceLocation locLim);

/// Knowledge about the allocated extent of an array/pointer variable.
struct ExtentInfo {
  /// Total element count of the outermost dimension when constant.
  std::optional<std::uint64_t> constElems;
  /// Source spelling of the element count (e.g. "n" or "1024"); empty when
  /// unknown.
  std::string spelling;
  /// Defining expression when symbolic (points into the AST).
  const Expr *expr = nullptr;

  [[nodiscard]] bool known() const {
    return constElems.has_value() || !spelling.empty();
  }
};

/// Extents for pointer variables initialized via malloc/calloc patterns
/// (`p = (T *)malloc(n * sizeof(T))`), scanned across the whole unit.
class MallocExtents {
public:
  explicit MallocExtents(const TranslationUnit &unit);

  [[nodiscard]] const ExtentInfo *lookup(const VarDecl *var) const {
    auto it = extents_.find(var);
    return it != extents_.end() ? &it->second : nullptr;
  }

private:
  void scanStmt(const Stmt *stmt);
  void recordAssignment(const VarDecl *var, const Expr *value);
  std::map<const VarDecl *, ExtentInfo> extents_;
};

/// Extent of a variable's mapped data: declared array extent, or malloc
/// extent for pointers. Unknown extents return !known().
[[nodiscard]] ExtentInfo dataExtent(const VarDecl *var,
                                    const MallocExtents &mallocExtents);

/// True when `event` provably writes every element of `var` within its
/// kernel: the subscript is exactly the induction variable of an enclosing
/// unit-stride loop spanning [0, extent), and the write is unconditional.
/// Used to suppress `to`-mappings for arrays fully overwritten on device.
[[nodiscard]] bool isFullCoverageWrite(const AccessEvent &event,
                                       const VarDecl *var,
                                       const ExtentInfo &extent,
                                       const std::vector<const Stmt *> &loops);

} // namespace ompdart
