#include "cfg/cfg.hpp"

#include <sstream>

namespace ompdart {

namespace {

const char *edgeKindName(EdgeKind kind) {
  switch (kind) {
  case EdgeKind::Fallthrough:
    return "";
  case EdgeKind::True:
    return "true";
  case EdgeKind::False:
    return "false";
  case EdgeKind::LoopBack:
    return "back";
  case EdgeKind::Break:
    return "break";
  case EdgeKind::Continue:
    return "continue";
  case EdgeKind::Return:
    return "return";
  case EdgeKind::SwitchCase:
    return "case";
  }
  return "";
}

} // namespace

std::string AstCfg::toDot() const {
  std::ostringstream out;
  out << "digraph \"" << (function_ != nullptr ? function_->name() : "cfg")
      << "\" {\n";
  for (const auto &block : blocks_) {
    out << "  B" << block->id() << " [label=\"B" << block->id();
    if (block.get() == entry_)
      out << " (entry)";
    if (block.get() == exit_)
      out << " (exit)";
    out << "\\n" << block->elements().size() << " stmts\"";
    if (block->isOffloaded())
      out << ", style=filled, fillcolor=lightblue";
    out << "];\n";
  }
  for (const auto &block : blocks_) {
    for (const CfgEdge &edge : block->successors()) {
      out << "  B" << block->id() << " -> B" << edge.target->id();
      const char *label = edgeKindName(edge.kind);
      if (label[0] != '\0')
        out << " [label=\"" << label << "\"]";
      out << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

BasicBlock *CfgBuilder::newBlock() {
  auto block = std::make_unique<BasicBlock>(nextId_++);
  if (!offloadStack_.empty())
    block->setOffloadRegion(offloadStack_.back());
  BasicBlock *raw = block.get();
  cfg_->blocks_.push_back(std::move(block));
  return raw;
}

void CfgBuilder::addEdge(BasicBlock *from, BasicBlock *to, EdgeKind kind) {
  if (from == nullptr || to == nullptr)
    return;
  from->successors_.push_back(CfgEdge{to, kind});
  to->predecessors_.push_back(CfgEdge{from, kind});
}

void CfgBuilder::recordLeaf(const Stmt *stmt, BasicBlock *block) {
  block->appendElement(stmt);
  cfg_->blockOfStmt_[stmt] = block;
  cfg_->loopStack_[stmt] = loopStack_;
}

std::unique_ptr<AstCfg> CfgBuilder::build(const FunctionDecl *fn) {
  auto cfg = std::make_unique<AstCfg>();
  cfg_ = cfg.get();
  nextId_ = 0;
  breakTargets_.clear();
  continueTargets_.clear();
  offloadStack_.clear();
  loopStack_.clear();

  cfg->function_ = fn;
  cfg->entry_ = newBlock();
  cfg->exit_ = newBlock();

  BasicBlock *last = cfg->entry_;
  if (fn->body() != nullptr)
    last = visitCompound(fn->body(), cfg->entry_);
  if (last != nullptr)
    addEdge(last, cfg->exit_, EdgeKind::Fallthrough);

  cfg_ = nullptr;
  return cfg;
}

BasicBlock *CfgBuilder::visitStmt(const Stmt *stmt, BasicBlock *current) {
  if (stmt == nullptr || current == nullptr)
    return current;
  switch (stmt->kind()) {
  case StmtKind::Compound:
    return visitCompound(static_cast<const CompoundStmt *>(stmt), current);
  case StmtKind::If:
    return visitIf(static_cast<const IfStmt *>(stmt), current);
  case StmtKind::For:
    return visitFor(static_cast<const ForStmt *>(stmt), current);
  case StmtKind::While:
    return visitWhile(static_cast<const WhileStmt *>(stmt), current);
  case StmtKind::Do:
    return visitDo(static_cast<const DoStmt *>(stmt), current);
  case StmtKind::Switch:
    return visitSwitch(static_cast<const SwitchStmt *>(stmt), current);
  case StmtKind::OmpDirective:
    return visitOmpDirective(static_cast<const OmpDirectiveStmt *>(stmt),
                             current);
  case StmtKind::Break: {
    recordLeaf(stmt, current);
    if (!breakTargets_.empty())
      addEdge(current, breakTargets_.back(), EdgeKind::Break);
    return nullptr;
  }
  case StmtKind::Continue: {
    recordLeaf(stmt, current);
    if (!continueTargets_.empty())
      addEdge(current, continueTargets_.back(), EdgeKind::Continue);
    return nullptr;
  }
  case StmtKind::Return: {
    recordLeaf(stmt, current);
    addEdge(current, cfg_->exit_, EdgeKind::Return);
    return nullptr;
  }
  case StmtKind::Case: {
    const auto *caseStmt = static_cast<const CaseStmt *>(stmt);
    recordLeaf(stmt, current);
    return visitStmt(caseStmt->sub(), current);
  }
  case StmtKind::Default: {
    const auto *defaultStmt = static_cast<const DefaultStmt *>(stmt);
    recordLeaf(stmt, current);
    return visitStmt(defaultStmt->sub(), current);
  }
  case StmtKind::Decl:
  case StmtKind::Expr:
  case StmtKind::Null:
    recordLeaf(stmt, current);
    return current;
  }
  return current;
}

BasicBlock *CfgBuilder::visitCompound(const CompoundStmt *stmt,
                                      BasicBlock *current) {
  for (const Stmt *sub : stmt->body()) {
    if (current == nullptr) {
      // Unreachable code after break/continue/return: give it its own block
      // so analyses can still inspect it, but without an incoming edge.
      current = newBlock();
    }
    current = visitStmt(sub, current);
  }
  return current;
}

BasicBlock *CfgBuilder::visitIf(const IfStmt *stmt, BasicBlock *current) {
  recordLeaf(stmt, current);
  current->setTerminator(stmt, stmt->cond());

  BasicBlock *thenBlock = newBlock();
  addEdge(current, thenBlock, EdgeKind::True);
  BasicBlock *thenEnd = visitStmt(stmt->thenStmt(), thenBlock);

  BasicBlock *elseEnd = nullptr;
  BasicBlock *join = newBlock();
  if (stmt->elseStmt() != nullptr) {
    BasicBlock *elseBlock = newBlock();
    addEdge(current, elseBlock, EdgeKind::False);
    elseEnd = visitStmt(stmt->elseStmt(), elseBlock);
  } else {
    addEdge(current, join, EdgeKind::False);
  }
  if (thenEnd != nullptr)
    addEdge(thenEnd, join, EdgeKind::Fallthrough);
  if (elseEnd != nullptr)
    addEdge(elseEnd, join, EdgeKind::Fallthrough);
  return join;
}

BasicBlock *CfgBuilder::visitFor(const ForStmt *stmt, BasicBlock *current) {
  if (stmt->init() != nullptr)
    recordLeaf(stmt->init(), current);

  BasicBlock *head = newBlock();
  addEdge(current, head, EdgeKind::Fallthrough);
  recordLeaf(stmt, head);
  head->setTerminator(stmt, stmt->cond());

  BasicBlock *exitBlock = newBlock();
  BasicBlock *body = newBlock();
  addEdge(head, body, EdgeKind::True);
  addEdge(head, exitBlock, EdgeKind::False);

  breakTargets_.push_back(exitBlock);
  continueTargets_.push_back(head);
  loopStack_.push_back(stmt);
  BasicBlock *bodyEnd = visitStmt(stmt->body(), body);
  loopStack_.pop_back();
  continueTargets_.pop_back();
  breakTargets_.pop_back();

  if (bodyEnd != nullptr)
    addEdge(bodyEnd, head, EdgeKind::LoopBack);
  return exitBlock;
}

BasicBlock *CfgBuilder::visitWhile(const WhileStmt *stmt,
                                   BasicBlock *current) {
  BasicBlock *head = newBlock();
  addEdge(current, head, EdgeKind::Fallthrough);
  recordLeaf(stmt, head);
  head->setTerminator(stmt, stmt->cond());

  BasicBlock *exitBlock = newBlock();
  BasicBlock *body = newBlock();
  addEdge(head, body, EdgeKind::True);
  addEdge(head, exitBlock, EdgeKind::False);

  breakTargets_.push_back(exitBlock);
  continueTargets_.push_back(head);
  loopStack_.push_back(stmt);
  BasicBlock *bodyEnd = visitStmt(stmt->body(), body);
  loopStack_.pop_back();
  continueTargets_.pop_back();
  breakTargets_.pop_back();

  if (bodyEnd != nullptr)
    addEdge(bodyEnd, head, EdgeKind::LoopBack);
  return exitBlock;
}

BasicBlock *CfgBuilder::visitDo(const DoStmt *stmt, BasicBlock *current) {
  BasicBlock *body = newBlock();
  addEdge(current, body, EdgeKind::Fallthrough);

  BasicBlock *cond = newBlock();
  BasicBlock *exitBlock = newBlock();

  breakTargets_.push_back(exitBlock);
  continueTargets_.push_back(cond);
  loopStack_.push_back(stmt);
  BasicBlock *bodyEnd = visitStmt(stmt->body(), body);
  loopStack_.pop_back();
  continueTargets_.pop_back();
  breakTargets_.pop_back();

  if (bodyEnd != nullptr)
    addEdge(bodyEnd, cond, EdgeKind::Fallthrough);
  recordLeaf(stmt, cond);
  cond->setTerminator(stmt, stmt->cond());
  addEdge(cond, body, EdgeKind::LoopBack);
  addEdge(cond, exitBlock, EdgeKind::False);
  return exitBlock;
}

BasicBlock *CfgBuilder::visitSwitch(const SwitchStmt *stmt,
                                    BasicBlock *current) {
  recordLeaf(stmt, current);
  current->setTerminator(stmt, stmt->cond());
  BasicBlock *exitBlock = newBlock();
  breakTargets_.push_back(exitBlock);

  // Model the body as a chain where each case label is also an entry from
  // the switch head (fallthrough between cases preserved).
  const auto *body = dynamic_cast<const CompoundStmt *>(stmt->body());
  BasicBlock *previous = nullptr;
  bool sawDefault = false;
  if (body != nullptr) {
    for (const Stmt *sub : body->body()) {
      const bool isLabel = sub->kind() == StmtKind::Case ||
                           sub->kind() == StmtKind::Default;
      if (isLabel) {
        BasicBlock *caseBlock = newBlock();
        addEdge(current, caseBlock, EdgeKind::SwitchCase);
        if (previous != nullptr)
          addEdge(previous, caseBlock, EdgeKind::Fallthrough);
        sawDefault |= sub->kind() == StmtKind::Default;
        previous = visitStmt(sub, caseBlock);
      } else if (previous != nullptr) {
        previous = visitStmt(sub, previous);
      }
    }
  } else if (stmt->body() != nullptr) {
    BasicBlock *caseBlock = newBlock();
    addEdge(current, caseBlock, EdgeKind::SwitchCase);
    previous = visitStmt(stmt->body(), caseBlock);
  }
  if (previous != nullptr)
    addEdge(previous, exitBlock, EdgeKind::Fallthrough);
  if (!sawDefault)
    addEdge(current, exitBlock, EdgeKind::False);
  breakTargets_.pop_back();
  return exitBlock;
}

BasicBlock *CfgBuilder::visitOmpDirective(const OmpDirectiveStmt *stmt,
                                          BasicBlock *current) {
  recordLeaf(stmt, current);
  if (stmt->isOffloadKernel())
    cfg_->kernels_.push_back(stmt);

  if (stmt->associated() == nullptr)
    return current; // standalone directive (target update etc.)

  if (stmt->isOffloadKernel()) {
    // Blocks inside the kernel are marked as offloaded.
    BasicBlock *kernelEntry = newBlock();
    offloadStack_.push_back(stmt);
    kernelEntry->setOffloadRegion(stmt);
    addEdge(current, kernelEntry, EdgeKind::Fallthrough);
    BasicBlock *kernelEnd = visitStmt(stmt->associated(), kernelEntry);
    offloadStack_.pop_back();
    BasicBlock *after = newBlock();
    if (kernelEnd != nullptr)
      addEdge(kernelEnd, after, EdgeKind::Fallthrough);
    return after;
  }
  // target data (and host `parallel for`): structured block on the host.
  return visitStmt(stmt->associated(), current);
}

std::vector<std::unique_ptr<AstCfg>> buildAllCfgs(const TranslationUnit &unit) {
  std::vector<std::unique_ptr<AstCfg>> cfgs;
  for (const FunctionDecl *fn : unit.functions) {
    if (!fn->isDefined())
      continue;
    CfgBuilder builder;
    cfgs.push_back(builder.build(fn));
  }
  return cfgs;
}

} // namespace ompdart
