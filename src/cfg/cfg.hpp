// Control-flow graph and the paper's hybrid AST-CFG representation.
//
// Each function gets a CFG whose basic blocks hold pointers back into the
// AST (the "AST edge" of Fig. 2 in the paper); blocks inside an offload
// kernel are marked with the owning directive. The data-flow and liveness
// analyses traverse CFG edges while consulting the linked AST nodes for
// access patterns — exactly the split the paper describes.
#pragma once

#include "frontend/ast.hpp"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ompdart {

enum class EdgeKind {
  Fallthrough,
  True,     ///< Branch taken when the condition is true.
  False,    ///< Branch taken when the condition is false.
  LoopBack, ///< Back edge to a loop head.
  Break,
  Continue,
  Return,
  SwitchCase,
};

class BasicBlock;

struct CfgEdge {
  BasicBlock *target = nullptr;
  EdgeKind kind = EdgeKind::Fallthrough;
};

/// A node of the CFG. `elements` lists the leaf statements/expressions the
/// block executes in order; each points back into the AST.
class BasicBlock {
public:
  explicit BasicBlock(unsigned id) : id_(id) {}

  [[nodiscard]] unsigned id() const { return id_; }
  [[nodiscard]] const std::vector<const Stmt *> &elements() const {
    return elements_;
  }
  [[nodiscard]] const std::vector<CfgEdge> &successors() const {
    return successors_;
  }
  [[nodiscard]] const std::vector<CfgEdge> &predecessors() const {
    return predecessors_;
  }
  /// Innermost offload kernel containing this block, or null for host code.
  [[nodiscard]] const OmpDirectiveStmt *offloadRegion() const {
    return offloadRegion_;
  }
  [[nodiscard]] bool isOffloaded() const { return offloadRegion_ != nullptr; }
  /// The branch statement that terminates this block (if/loop/switch), when
  /// the block ends in a conditional edge pair.
  [[nodiscard]] const Stmt *terminator() const { return terminator_; }
  /// Condition expression evaluated at the end of this block, if any.
  [[nodiscard]] const Expr *condition() const { return condition_; }

  void appendElement(const Stmt *stmt) { elements_.push_back(stmt); }
  void setOffloadRegion(const OmpDirectiveStmt *region) {
    offloadRegion_ = region;
  }
  void setTerminator(const Stmt *stmt, const Expr *condition) {
    terminator_ = stmt;
    condition_ = condition;
  }

private:
  friend class CfgBuilder;
  unsigned id_;
  std::vector<const Stmt *> elements_;
  std::vector<CfgEdge> successors_;
  std::vector<CfgEdge> predecessors_;
  const OmpDirectiveStmt *offloadRegion_ = nullptr;
  const Stmt *terminator_ = nullptr;
  const Expr *condition_ = nullptr;
};

/// Hybrid AST-CFG for one function: the CFG plus AST back-links and the
/// loop/kernel structure the mapping planner consumes.
class AstCfg {
public:
  [[nodiscard]] const FunctionDecl *function() const { return function_; }
  [[nodiscard]] BasicBlock *entry() const { return entry_; }
  [[nodiscard]] BasicBlock *exit() const { return exit_; }
  [[nodiscard]] const std::vector<std::unique_ptr<BasicBlock>> &blocks()
      const {
    return blocks_;
  }

  /// Block that executes a given leaf statement.
  [[nodiscard]] BasicBlock *blockOf(const Stmt *stmt) const {
    auto it = blockOfStmt_.find(stmt);
    return it != blockOfStmt_.end() ? it->second : nullptr;
  }

  /// Offload kernels in source order.
  [[nodiscard]] const std::vector<const OmpDirectiveStmt *> &kernels() const {
    return kernels_;
  }

  /// Stack of loops (outermost first) enclosing a statement. Populated for
  /// kernels and for every leaf statement.
  [[nodiscard]] const std::vector<const Stmt *> *
  enclosingLoops(const Stmt *stmt) const {
    auto it = loopStack_.find(stmt);
    return it != loopStack_.end() ? &it->second : nullptr;
  }

  /// Number of reachable blocks (entry/exit included).
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }

  /// Graphviz dot rendering (block ids, edge kinds, offload shading).
  [[nodiscard]] std::string toDot() const;

private:
  friend class CfgBuilder;
  const FunctionDecl *function_ = nullptr;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  BasicBlock *entry_ = nullptr;
  BasicBlock *exit_ = nullptr;
  std::unordered_map<const Stmt *, BasicBlock *> blockOfStmt_;
  std::vector<const OmpDirectiveStmt *> kernels_;
  std::unordered_map<const Stmt *, std::vector<const Stmt *>> loopStack_;
};

/// Builds the AST-CFG for a function definition.
class CfgBuilder {
public:
  [[nodiscard]] std::unique_ptr<AstCfg> build(const FunctionDecl *fn);

private:
  BasicBlock *newBlock();
  void addEdge(BasicBlock *from, BasicBlock *to, EdgeKind kind);
  /// Visits a statement, threading the "current" block; returns the block
  /// control flow continues in (null when the path terminated, e.g. return).
  BasicBlock *visitStmt(const Stmt *stmt, BasicBlock *current);
  BasicBlock *visitCompound(const CompoundStmt *stmt, BasicBlock *current);
  BasicBlock *visitIf(const IfStmt *stmt, BasicBlock *current);
  BasicBlock *visitFor(const ForStmt *stmt, BasicBlock *current);
  BasicBlock *visitWhile(const WhileStmt *stmt, BasicBlock *current);
  BasicBlock *visitDo(const DoStmt *stmt, BasicBlock *current);
  BasicBlock *visitSwitch(const SwitchStmt *stmt, BasicBlock *current);
  BasicBlock *visitOmpDirective(const OmpDirectiveStmt *stmt,
                                BasicBlock *current);
  void recordLeaf(const Stmt *stmt, BasicBlock *block);

  AstCfg *cfg_ = nullptr;
  unsigned nextId_ = 0;
  std::vector<BasicBlock *> breakTargets_;
  std::vector<BasicBlock *> continueTargets_;
  std::vector<const OmpDirectiveStmt *> offloadStack_;
  std::vector<const Stmt *> loopStack_;
};

/// Builds AST-CFGs for every defined function in the unit.
[[nodiscard]] std::vector<std::unique_ptr<AstCfg>>
buildAllCfgs(const TranslationUnit &unit);

} // namespace ompdart
