// Experiment harness: regenerates the paper's evaluation (Figures 3-6,
// Tables III-V). For each benchmark it runs the three variants of §V —
// unoptimized (implicit rules), OMPDart (the tool's plan) and expert (hand
// mappings) — through the interpreter + simulated runtime, checks output
// equality (the paper's correctness criterion), and derives
// transfer/runtime comparisons from the ledgers and cost model.
//
// The OMPDart variant executes through the ApplyToInterpBackend by
// default: the Mapping IR is applied to the already-parsed unit as an
// execution overlay, skipping the rewrite→reparse round-trip the harness
// used to pay per benchmark. `ExperimentOptions::useInterpBackend = false`
// restores the classic path (and is what the equivalence tests compare
// against).
#pragma once

#include "driver/report.hpp"
#include "mapping/ir.hpp"
#include "sim/runtime.hpp"
#include "suite/benchmarks.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace ompdart::exp {

/// Harness knobs (variant execution path, planner cost model).
struct ExperimentOptions {
  /// Run the OMPDart variant via ApplyToInterpBackend (plan overlay on the
  /// session's AST) instead of interpreting the rewritten source.
  bool useInterpBackend = true;
  /// Cost model driving the planner's candidate selection.
  std::string costModel = "paper-greedy";
};

/// Measurements for one benchmark variant.
struct VariantResult {
  std::string name; ///< "unoptimized" | "ompdart" | "expert"
  bool ok = false;
  std::string error;
  std::string output;
  std::uint64_t bytesHtoD = 0;
  std::uint64_t bytesDtoH = 0;
  unsigned callsHtoD = 0;
  unsigned callsDtoH = 0;
  unsigned kernelLaunches = 0;
  double transferSeconds = 0.0;
  double totalSeconds = 0.0;

  [[nodiscard]] std::uint64_t totalBytes() const {
    return bytesHtoD + bytesDtoH;
  }
  [[nodiscard]] unsigned totalCalls() const { return callsHtoD + callsDtoH; }
};

/// Full comparison for one benchmark (one row of each figure).
struct BenchmarkComparison {
  std::string name;
  suite::PaperReference paper;
  VariantResult unoptimized;
  VariantResult ompdart;
  VariantResult expert;
  /// The paper's correctness criterion: outputs identical across variants.
  bool outputsMatch = false;
  /// Tool execution time on this benchmark (Table V).
  double toolSeconds = 0.0;
  /// Full pipeline report for the OMPDart variant (per-stage timings,
  /// diagnostics, plan summary); `toolSeconds` mirrors its total.
  Report toolReport;
  /// Complexity metrics of this benchmark measured on our re-authoring.
  unsigned kernels = 0;
  unsigned offloadedLines = 0;
  unsigned mappedVariables = 0;
  std::uint64_t possibleMappings = 0;
  /// The tool's transformed source (for inspection/examples).
  std::string transformedSource;
  /// Static cost-model prediction of the plan's transfer bytes (one region
  /// execution), for predicted-vs-simulated comparisons.
  std::uint64_t predictedPlanBytes = 0;

  [[nodiscard]] double speedup(const VariantResult &variant) const {
    return variant.totalSeconds > 0.0
               ? unoptimized.totalSeconds / variant.totalSeconds
               : 0.0;
  }
  [[nodiscard]] double transferReduction(const VariantResult &variant) const {
    return variant.totalBytes() > 0
               ? static_cast<double>(unoptimized.totalBytes()) /
                     static_cast<double>(variant.totalBytes())
               : 0.0;
  }
  [[nodiscard]] double
  transferTimeImprovement(const VariantResult &variant) const {
    return variant.transferSeconds > 0.0
               ? unoptimized.transferSeconds / variant.transferSeconds
               : 0.0;
  }
};

/// Runs all three variants of one benchmark.
[[nodiscard]] BenchmarkComparison
runBenchmark(const suite::BenchmarkDef &def, const sim::CostModel &model = {},
             const ExperimentOptions &options = {});

/// Runs the full nine-benchmark suite.
[[nodiscard]] std::vector<BenchmarkComparison>
runAllBenchmarks(const sim::CostModel &model = {},
                 const ExperimentOptions &options = {});

/// Static prediction of the transfer bytes one execution of the planned
/// regions moves: map items count once per direction (tofrom twice), alloc
/// moves nothing, updates count once each.
[[nodiscard]] std::uint64_t predictedTransferBytes(const ir::MappingIr &ir);

/// Geometric mean over positive values (the paper's summary statistic).
[[nodiscard]] double geometricMean(const std::vector<double> &values);

// --- Paper-style table renderers (one per table/figure) ---
[[nodiscard]] std::string renderTable3();
[[nodiscard]] std::string
renderTable4(const std::vector<BenchmarkComparison> &results);
[[nodiscard]] std::string
renderTable5(const std::vector<BenchmarkComparison> &results);
[[nodiscard]] std::string
renderFigure3(const std::vector<BenchmarkComparison> &results);
[[nodiscard]] std::string
renderFigure4(const std::vector<BenchmarkComparison> &results);
[[nodiscard]] std::string
renderFigure5(const std::vector<BenchmarkComparison> &results);
[[nodiscard]] std::string
renderFigure6(const std::vector<BenchmarkComparison> &results);

/// Human-readable byte count ("1.2 MB").
[[nodiscard]] std::string formatBytes(std::uint64_t bytes);

} // namespace ompdart::exp
