#include "exp/experiment.hpp"

#include "driver/pipeline.hpp"
#include "interp/interp.hpp"
#include "mapping/backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ompdart::exp {

namespace {

VariantResult fromRun(const std::string &name, const interp::RunResult &run,
                      const sim::CostModel &model) {
  VariantResult result;
  result.name = name;
  result.ok = run.ok;
  result.error = run.error;
  result.output = run.output;
  result.bytesHtoD = run.ledger.bytes(sim::TransferDir::HtoD);
  result.bytesDtoH = run.ledger.bytes(sim::TransferDir::DtoH);
  result.callsHtoD = run.ledger.calls(sim::TransferDir::HtoD);
  result.callsDtoH = run.ledger.calls(sim::TransferDir::DtoH);
  result.kernelLaunches = run.ledger.kernelLaunches();
  result.transferSeconds = model.transferSeconds(run.ledger);
  result.totalSeconds = model.totalSeconds(run.ledger);
  return result;
}

VariantResult measureVariant(const std::string &name,
                             const std::string &source,
                             const sim::CostModel &model) {
  return fromRun(name, interp::runProgram(source), model);
}

/// The OMPDart variant without the rewrite→reparse round-trip: the
/// session's Mapping IR is applied to its already-parsed unit as an
/// execution overlay.
VariantResult measureViaInterpBackend(Session &session,
                                      const sim::CostModel &model) {
  ApplyToInterpBackend backend;
  PlanConsumerInput input;
  input.ir = &session.ir();
  input.source = &session.sourceManager();
  input.unit = &session.parse().unit();
  if (!backend.consume(input)) {
    VariantResult result;
    result.name = "ompdart";
    result.error = backend.error();
    return result;
  }
  return fromRun("ompdart", backend.result(), model);
}

std::string formatRow(const char *label, const VariantResult &variant) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "  %-12s HtoD %10s /%5u calls   DtoH %10s /%5u calls",
                label, formatBytes(variant.bytesHtoD).c_str(),
                variant.callsHtoD, formatBytes(variant.bytesDtoH).c_str(),
                variant.callsDtoH);
  return buffer;
}

} // namespace

std::string formatBytes(std::uint64_t bytes) {
  char buffer[64];
  if (bytes >= 1024ull * 1024 * 1024)
    std::snprintf(buffer, sizeof buffer, "%.2f GB",
                  static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  else if (bytes >= 1024ull * 1024)
    std::snprintf(buffer, sizeof buffer, "%.2f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024));
  else if (bytes >= 1024)
    std::snprintf(buffer, sizeof buffer, "%.2f KB",
                  static_cast<double>(bytes) / 1024.0);
  else
    std::snprintf(buffer, sizeof buffer, "%llu B",
                  static_cast<unsigned long long>(bytes));
  return buffer;
}

double geometricMean(const std::vector<double> &values) {
  if (values.empty())
    return 0.0;
  double logSum = 0.0;
  unsigned count = 0;
  for (const double value : values) {
    if (value <= 0.0)
      continue;
    logSum += std::log(value);
    ++count;
  }
  return count > 0 ? std::exp(logSum / count) : 0.0;
}

std::uint64_t predictedTransferBytes(const ir::MappingIr &ir) {
  // Present-table accounting (OpenMP 5.2 reference counts): every region
  // entry is a fresh 0->1 transition (HtoD for to/tofrom) and every exit a
  // 1->0 transition (DtoH for from/tofrom), so map traffic multiplies by
  // the region's provable entry count; updates copy unconditionally each
  // time their insertion point executes.
  std::uint64_t total = 0;
  for (const ir::Region &region : ir.regions) {
    for (const ir::MapItem &map : region.maps) {
      // Per item: transition copies are paid only on COLD entries (the
      // planner's warm-callee accounting zeroes or lowers coldEntries for
      // entries arriving inside an enclosing caller region that already
      // maps the object; fully warm items also carry `present`).
      std::uint64_t perEntry = 0;
      switch (map.type) {
      case ir::MapType::To:
      case ir::MapType::From:
        perEntry = map.approxBytes;
        break;
      case ir::MapType::ToFrom:
        perEntry = 2 * map.approxBytes; // both the HtoD and DtoH legs
        break;
      case ir::MapType::Alloc:
      case ir::MapType::Release:
      case ir::MapType::Delete:
        break; // no movement
      }
      total += perEntry * map.coldEntries;
    }
    for (const ir::UpdateItem &update : region.updates)
      total +=
          update.approxBytes * std::max<std::uint64_t>(1, update.executions);
  }
  return total;
}

BenchmarkComparison runBenchmark(const suite::BenchmarkDef &def,
                                 const sim::CostModel &model,
                                 const ExperimentOptions &options) {
  BenchmarkComparison cmp;
  cmp.name = def.name;
  cmp.paper = def.paper;

  // OMPDart variant: run the staged pipeline on the unoptimized source.
  // The transformed text lives in cmp.transformedSource; don't duplicate it
  // inside the report.
  PipelineConfig config;
  config.includeOutputInReport = false;
  config.costModel = options.costModel;
  Session session(def.name + ".c", def.unoptimized, config);
  const bool toolOk = session.run();
  const ComplexityMetrics &metrics = session.metrics();
  cmp.toolReport = session.report();
  cmp.toolSeconds = cmp.toolReport.totalSeconds;
  cmp.transformedSource = session.rewrite();
  cmp.predictedPlanBytes = predictedTransferBytes(session.ir());
  cmp.kernels = metrics.kernels;
  cmp.offloadedLines = metrics.offloadedLines;
  cmp.mappedVariables = metrics.mappedVariables;
  cmp.possibleMappings = metrics.possibleMappings;

  cmp.unoptimized = measureVariant("unoptimized", def.unoptimized, model);
  if (toolOk && options.useInterpBackend)
    cmp.ompdart = measureViaInterpBackend(session, model);
  else
    cmp.ompdart = measureVariant(
        "ompdart", toolOk ? cmp.transformedSource : def.unoptimized, model);
  cmp.expert = measureVariant("expert", def.expert, model);

  cmp.outputsMatch = cmp.unoptimized.ok && cmp.ompdart.ok && cmp.expert.ok &&
                     cmp.unoptimized.output == cmp.ompdart.output &&
                     cmp.unoptimized.output == cmp.expert.output;
  return cmp;
}

std::vector<BenchmarkComparison>
runAllBenchmarks(const sim::CostModel &model,
                 const ExperimentOptions &options) {
  std::vector<BenchmarkComparison> results;
  for (const suite::BenchmarkDef &def : suite::allBenchmarks())
    results.push_back(runBenchmark(def, model, options));
  return results;
}

std::string renderTable3() {
  std::ostringstream out;
  out << "TABLE III: Programs used for evaluating OMPDart\n";
  out << "-------------------------------------------------------------\n";
  for (const suite::BenchmarkDef &def : suite::allBenchmarks()) {
    char buffer[256];
    std::snprintf(buffer, sizeof buffer, "  %-10s %-9s %-20s %s\n",
                  def.name.c_str(), def.suiteName.c_str(),
                  def.domain.c_str(), def.description.c_str());
    out << buffer;
  }
  return out.str();
}

std::string renderTable4(const std::vector<BenchmarkComparison> &results) {
  std::ostringstream out;
  out << "TABLE IV: Benchmark data mapping complexity "
         "(measured | paper)\n";
  out << "  benchmark   kernels        off.lines      mapped-vars    "
         "possible-mappings\n";
  out << "--------------------------------------------------------------"
         "----------------\n";
  for (const BenchmarkComparison &cmp : results) {
    char buffer[256];
    std::snprintf(buffer, sizeof buffer,
                  "  %-10s %4u | %4u    %5u | %4u    %4u | %4u    %8llu | "
                  "%8llu\n",
                  cmp.name.c_str(), cmp.kernels, cmp.paper.kernels,
                  cmp.offloadedLines, cmp.paper.offloadedLines,
                  cmp.mappedVariables, cmp.paper.mappedVariables,
                  static_cast<unsigned long long>(cmp.possibleMappings),
                  static_cast<unsigned long long>(
                      cmp.paper.possibleMappings));
    out << buffer;
  }
  return out.str();
}

std::string renderTable5(const std::vector<BenchmarkComparison> &results) {
  std::ostringstream out;
  out << "TABLE V: OMPDart overhead (tool execution time)\n";
  out << "  benchmark    measured (s)    paper (s)\n";
  out << "-------------------------------------------\n";
  double sum = 0.0;
  for (const BenchmarkComparison &cmp : results) {
    char buffer[128];
    std::snprintf(buffer, sizeof buffer, "  %-10s %10.4f %12.2f\n",
                  cmp.name.c_str(), cmp.toolSeconds, cmp.paper.toolSeconds);
    out << buffer;
    sum += cmp.toolSeconds;
  }
  char buffer[128];
  std::snprintf(buffer, sizeof buffer, "  %-10s %10.4f\n", "average",
                results.empty() ? 0.0 : sum / results.size());
  out << buffer;
  return out.str();
}

std::string renderFigure3(const std::vector<BenchmarkComparison> &results) {
  std::ostringstream out;
  out << "FIGURE 3: GPU data transfer activity (bytes, lower is better)\n";
  for (const BenchmarkComparison &cmp : results) {
    out << cmp.name << "\n";
    out << formatRow("unoptimized", cmp.unoptimized) << "\n";
    out << formatRow("OMPDart", cmp.ompdart) << "\n";
    out << formatRow("expert", cmp.expert) << "\n";
    char buffer[160];
    std::snprintf(buffer, sizeof buffer,
                  "  reduction (OMPDart vs unopt): %8.1fx   (paper: %.0fx)\n",
                  cmp.transferReduction(cmp.ompdart),
                  cmp.paper.transferReduction);
    out << buffer;
  }
  return out.str();
}

std::string renderFigure4(const std::vector<BenchmarkComparison> &results) {
  std::ostringstream out;
  out << "FIGURE 4: GPU data transfer activity (# memcpy calls, lower is "
         "better)\n";
  char buffer[200];
  std::snprintf(buffer, sizeof buffer, "  %-10s %22s %22s %22s\n",
                "benchmark", "unoptimized (H2D/D2H)", "OMPDart (H2D/D2H)",
                "expert (H2D/D2H)");
  out << buffer;
  for (const BenchmarkComparison &cmp : results) {
    std::snprintf(buffer, sizeof buffer,
                  "  %-10s %12u /%8u %12u /%8u %12u /%8u\n",
                  cmp.name.c_str(), cmp.unoptimized.callsHtoD,
                  cmp.unoptimized.callsDtoH, cmp.ompdart.callsHtoD,
                  cmp.ompdart.callsDtoH, cmp.expert.callsHtoD,
                  cmp.expert.callsDtoH);
    out << buffer;
  }
  return out.str();
}

std::string renderFigure5(const std::vector<BenchmarkComparison> &results) {
  std::ostringstream out;
  out << "FIGURE 5: Speedups over unoptimized OpenMP offload code "
         "(higher is better)\n";
  char buffer[200];
  std::snprintf(buffer, sizeof buffer, "  %-10s %12s %12s %14s\n",
                "benchmark", "OMPDart", "expert", "paper-OMPDart");
  out << buffer;
  std::vector<double> ompdartSpeedups;
  std::vector<double> expertSpeedups;
  std::vector<double> vsExpert;
  for (const BenchmarkComparison &cmp : results) {
    const double toolSpeedup = cmp.speedup(cmp.ompdart);
    const double expertSpeedup = cmp.speedup(cmp.expert);
    ompdartSpeedups.push_back(toolSpeedup);
    expertSpeedups.push_back(expertSpeedup);
    if (expertSpeedup > 0.0)
      vsExpert.push_back(toolSpeedup / expertSpeedup);
    std::snprintf(buffer, sizeof buffer, "  %-10s %11.2fx %11.2fx %13.2fx\n",
                  cmp.name.c_str(), toolSpeedup, expertSpeedup,
                  cmp.paper.speedup);
    out << buffer;
  }
  std::snprintf(buffer, sizeof buffer,
                "  geomean speedup: OMPDart %.2fx, expert %.2fx, "
                "OMPDart-vs-expert %.2fx (paper: 2.8x / - / 1.05x)\n",
                geometricMean(ompdartSpeedups),
                geometricMean(expertSpeedups), geometricMean(vsExpert));
  out << buffer;
  return out.str();
}

std::string renderFigure6(const std::vector<BenchmarkComparison> &results) {
  std::ostringstream out;
  out << "FIGURE 6: Improvements in data transfer wall time over "
         "unoptimized (higher is better)\n";
  char buffer[200];
  std::snprintf(buffer, sizeof buffer, "  %-10s %12s %12s\n", "benchmark",
                "OMPDart", "expert");
  out << buffer;
  std::vector<double> ompdartGains;
  std::vector<double> expertGains;
  for (const BenchmarkComparison &cmp : results) {
    const double toolGain = cmp.transferTimeImprovement(cmp.ompdart);
    const double expertGain = cmp.transferTimeImprovement(cmp.expert);
    ompdartGains.push_back(toolGain);
    expertGains.push_back(expertGain);
    std::snprintf(buffer, sizeof buffer, "  %-10s %11.2fx %11.2fx\n",
                  cmp.name.c_str(), toolGain, expertGain);
    out << buffer;
  }
  std::snprintf(buffer, sizeof buffer,
                "  geomean transfer-time improvement: OMPDart %.2fx, expert "
                "%.2fx (paper: 5.1x / 4.2x)\n",
                geometricMean(ompdartGains), geometricMean(expertGains));
  out << buffer;
  return out.str();
}

} // namespace ompdart::exp
