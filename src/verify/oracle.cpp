#include "verify/oracle.hpp"

#include "exp/experiment.hpp"
#include "frontend/parser.hpp"
#include "gen/generator.hpp"
#include "mapping/backend.hpp"
#include "rewrite/rewriter.hpp"

#include <sstream>

namespace ompdart::verify {

namespace {

/// Invariant (3) needs every planned transfer to have a statically known
/// byte size. A map or update whose extent stayed symbolic (e.g. call
/// sites disagree on a pointer parameter's element count, so the planner
/// took the conservative path and `approxBytes` is 0) is correct but not
/// byte-predictable — the same category as an unprovable loop trip.
bool byteExactPredictable(const ir::MappingIr &ir) {
  for (const ir::Region &region : ir.regions) {
    for (const ir::MapItem &map : region.maps) {
      const bool moves = map.type == ir::MapType::To ||
                         map.type == ir::MapType::From ||
                         map.type == ir::MapType::ToFrom;
      if (moves && !map.modifiers.present && map.approxBytes == 0)
        return false;
    }
    for (const ir::UpdateItem &update : region.updates)
      if (update.approxBytes == 0)
        return false;
  }
  return true;
}

/// Shared comparison core: both baseline and planned runs exist; fill the
/// verdict from the ledgers and invariant checks.
void judge(OracleVerdict &verdict, const interp::RunResult &baseline,
           const interp::RunResult &planned, std::uint64_t predicted,
           bool provableTrips, bool checkPredicted) {
  verdict.baselineBytes = baseline.ledger.totalBytes();
  verdict.planBytes = planned.ledger.totalBytes();
  verdict.predictedBytes = predicted;
  verdict.baselineCalls = baseline.ledger.totalCalls();
  verdict.planCalls = planned.ledger.totalCalls();
  verdict.baselineOutput = baseline.output;
  verdict.planOutput = planned.output;

  verdict.outputsMatch = baseline.output == planned.output &&
                         baseline.exitCode == planned.exitCode;
  verdict.transferBounded = verdict.planBytes <= verdict.baselineBytes;
  verdict.predictedChecked = checkPredicted && provableTrips;
  verdict.predictedMatches =
      !verdict.predictedChecked || verdict.predictedBytes == verdict.planBytes;
  verdict.ok = verdict.pipelineOk && verdict.outputsMatch &&
               verdict.transferBounded && verdict.predictedMatches &&
               verdict.rewriteMatches;
}

/// Optional rewritten-source leg: rewrite -> reparse -> run must reproduce
/// the baseline output byte-for-byte as well.
void judgeRewrite(OracleVerdict &verdict, const SourceManager &sm,
                  const ir::MappingIr &ir, const interp::RunResult &baseline,
                  const interp::InterpOptions &interpOptions) {
  verdict.rewriteChecked = true;
  const std::string transformed = applyMappingIr(sm, ir);
  const interp::RunResult run =
      interp::runProgram(transformed, interpOptions);
  if (!run.ok) {
    verdict.rewriteMatches = false;
    verdict.error = "rewritten source failed to run: " + run.error;
    return;
  }
  verdict.rewriteMatches = run.output == baseline.output &&
                           run.exitCode == baseline.exitCode;
  if (!verdict.rewriteMatches)
    verdict.error = "rewritten source diverges\n--- baseline ---\n" +
                    baseline.output + "--- rewritten ---\n" + run.output;
}

} // namespace

std::string OracleVerdict::divergence() const {
  if (ok)
    return "";
  std::ostringstream out;
  if (!pipelineOk)
    return "pipeline failure: " + error;
  if (!outputsMatch) {
    out << "invariant 1 violated: outputs differ\n--- baseline ---\n"
        << baselineOutput << "--- planned ---\n"
        << planOutput;
    return out.str();
  }
  if (!transferBounded) {
    out << "invariant 2 violated: plan moved " << planBytes
        << " bytes > baseline " << baselineBytes << " bytes";
    return out.str();
  }
  if (!predictedMatches) {
    out << "invariant 3 violated: predicted " << predictedBytes
        << " bytes != simulated " << planBytes << " bytes";
    return out.str();
  }
  out << "rewritten-source leg violated: " << error;
  return out.str();
}

json::Value OracleVerdict::toJson() const {
  json::Value out = json::Value::object();
  out.set("ok", ok);
  out.set("pipelineOk", pipelineOk);
  if (!error.empty())
    out.set("error", error);
  out.set("outputsMatch", outputsMatch);
  out.set("transferBounded", transferBounded);
  out.set("predictedChecked", predictedChecked);
  out.set("predictedMatches", predictedMatches);
  out.set("rewriteChecked", rewriteChecked);
  out.set("rewriteMatches", rewriteMatches);
  out.set("baselineBytes", baselineBytes);
  out.set("planBytes", planBytes);
  out.set("predictedBytes", predictedBytes);
  out.set("baselineCalls", baselineCalls);
  out.set("planCalls", planCalls);
  out.set("irFingerprint", irFingerprint);
  return out;
}

OracleVerdict runOracle(const std::string &name, const std::string &source,
                        bool provableTrips, const OracleOptions &options) {
  OracleVerdict verdict;

  PipelineConfig config = options.pipeline;
  config.stopAfter = Stage::Plan;
  config.includeOutputInReport = false;
  Session session(name, source, config);
  if (!session.run()) {
    std::string detail;
    for (const Diagnostic &diag : session.diagnostics().sortedDiagnostics())
      detail += diag.str() + "\n";
    verdict.error = "pipeline failed: " + detail;
    verdict.cacheStatus = session.planCacheStatus();
    return verdict;
  }
  verdict.cacheStatus = session.planCacheStatus();
  verdict.irFingerprint = session.ir().fingerprint();

  // After a plan-cache hit parse() lazily re-parses the (content-identical)
  // source, so the overlay always has a live unit to resolve against.
  const TranslationUnit &unit = session.parse().unit();
  if (!session.parseSucceeded()) {
    verdict.error = "parse failed after plan";
    return verdict;
  }

  interp::Interpreter baselineRun(unit, options.interp);
  const interp::RunResult baseline = baselineRun.run();
  if (!baseline.ok) {
    verdict.error = "baseline run failed: " + baseline.error;
    return verdict;
  }

  ApplyToInterpBackend backend(options.interp);
  PlanConsumerInput input;
  input.ir = &session.ir();
  input.source = &session.sourceManager();
  input.unit = &unit;
  if (!backend.consume(input)) {
    verdict.error = "overlay backend failed: " + backend.error();
    return verdict;
  }
  const interp::RunResult &planned = backend.result();
  if (!planned.ok) {
    verdict.error = "planned run failed: " + planned.error;
    return verdict;
  }

  verdict.pipelineOk = true;
  if (options.checkRewrite)
    judgeRewrite(verdict, session.sourceManager(), session.ir(), baseline,
                 options.interp);
  judge(verdict, baseline, planned,
        exp::predictedTransferBytes(session.ir()), provableTrips,
        options.checkPredicted && byteExactPredictable(session.ir()));
  return verdict;
}

OracleVerdict runOracle(const gen::GeneratedProgram &program,
                        const OracleOptions &options) {
  return runOracle(program.name + ".c", program.combined(),
                   program.provableTrips, options);
}

OracleVerdict verifyIr(const std::string &name, const std::string &source,
                       const ir::MappingIr &ir, bool provableTrips,
                       const OracleOptions &options) {
  OracleVerdict verdict;
  verdict.irFingerprint = ir.fingerprint();

  SourceManager sm(name, source);
  ASTContext context;
  DiagnosticEngine diags;
  if (!parseSource(sm, context, diags) || diags.hasErrors()) {
    verdict.error = "parse failed: " + diags.summary();
    return verdict;
  }

  interp::Interpreter baselineRun(context.unit(), options.interp);
  const interp::RunResult baseline = baselineRun.run();
  if (!baseline.ok) {
    verdict.error = "baseline run failed: " + baseline.error;
    return verdict;
  }

  ApplyToInterpBackend backend(options.interp);
  PlanConsumerInput input;
  input.ir = &ir;
  input.source = &sm;
  input.unit = &context.unit();
  if (!backend.consume(input)) {
    verdict.error = "overlay backend failed: " + backend.error();
    return verdict;
  }
  const interp::RunResult &planned = backend.result();
  if (!planned.ok) {
    verdict.error = "planned run failed: " + planned.error;
    return verdict;
  }

  verdict.pipelineOk = true;
  if (options.checkRewrite)
    judgeRewrite(verdict, sm, ir, baseline, options.interp);
  judge(verdict, baseline, planned, exp::predictedTransferBytes(ir),
        provableTrips, options.checkPredicted && byteExactPredictable(ir));
  return verdict;
}

} // namespace ompdart::verify
