// Differential plan-correctness oracle (the paper's §V safety claim,
// mechanized).
//
// A program run under the tool's mapping plan must behave exactly like the
// same program run under the conservative implicit-mapping baseline while
// moving no more data. The oracle runs both variants through the
// interpreter + simulated runtime — the baseline with no plan (implicit
// to/from-everything rules), the planned variant with the Session's Mapping
// IR applied as an execution overlay via ApplyToInterpBackend — and checks
// three invariants:
//
//   (1) observable final state is bit-identical: captured stdout and exit
//       code match between baseline and planned runs,
//   (2) the planned run moves no more bytes than the baseline,
//   (3) for programs whose loop trips are all statically provable, the
//       planner's predicted transfer bytes equal the simulated bytes
//       exactly (the BENCH_plan_cost reconciliation, enforced per program).
//
// Every generated program from src/gen/ flows through here; a failed
// verdict is a real bug in parser, planner, interp overlay or the
// generator itself, and becomes a minimized regression under
// tests/verify/regressions/.
#pragma once

#include "driver/pipeline.hpp"
#include "interp/interp.hpp"
#include "mapping/ir.hpp"
#include "support/json.hpp"

#include <cstdint>
#include <string>

namespace ompdart::gen {
struct GeneratedProgram;
} // namespace ompdart::gen

namespace ompdart::verify {

struct OracleOptions {
  /// Pipeline configuration for the planning Session (cost model, ablation
  /// switches, shared plan cache). `stopAfter`/`includeOutputInReport` are
  /// managed by the oracle.
  PipelineConfig pipeline;
  interp::InterpOptions interp;
  /// Check invariant (3); only applied to programs with provable trips.
  bool checkPredicted = true;
  /// Also run the program under the SourceRewriteBackend's transformed
  /// text (rewrite -> reparse -> interpret) and require its output to
  /// match the baseline too. Catches rewriter-only bugs the overlay path
  /// cannot see (e.g. directive placement relative to braceless loop
  /// bodies). Off by default: it pays a second parse + run.
  bool checkRewrite = false;
};

/// Outcome of one differential run. `ok` is the conjunction of the three
/// invariants (an invariant that was not applicable counts as held).
struct OracleVerdict {
  bool ok = false;
  /// Pipeline or interpreter failure before any comparison could happen
  /// (parse error, planner diagnostic, interp abort); `error` explains.
  bool pipelineOk = false;
  std::string error;

  bool outputsMatch = false;    ///< invariant (1)
  bool transferBounded = false; ///< invariant (2)
  bool predictedChecked = false;
  bool predictedMatches = true; ///< invariant (3), true when unchecked
  bool rewriteChecked = false;
  /// Rewritten-source leg of invariant (1), true when unchecked.
  bool rewriteMatches = true;

  std::uint64_t baselineBytes = 0;
  std::uint64_t planBytes = 0;
  std::uint64_t predictedBytes = 0;
  unsigned baselineCalls = 0;
  unsigned planCalls = 0;

  std::string baselineOutput;
  std::string planOutput;
  /// Content fingerprint of the plan IR (corpus pinning / drift detection).
  std::string irFingerprint;
  /// Plan-cache probe outcome of the planning session.
  Session::PlanCacheStatus cacheStatus = Session::PlanCacheStatus::Disabled;

  /// Human-readable description of the first violated invariant; empty
  /// when `ok`.
  [[nodiscard]] std::string divergence() const;
  [[nodiscard]] json::Value toJson() const;
};

/// Full differential run: plan `source` through a Session, then execute
/// baseline and overlay variants. `provableTrips` gates invariant (3).
[[nodiscard]] OracleVerdict runOracle(const std::string &name,
                                      const std::string &source,
                                      bool provableTrips,
                                      const OracleOptions &options = {});

/// Convenience overload over a generated program (runs its combined
/// source; multi-TU programs are concatenated in link order).
[[nodiscard]] OracleVerdict runOracle(const gen::GeneratedProgram &program,
                                      const OracleOptions &options = {});

/// Oracle core with an injected plan: executes baseline and overlay runs
/// of `source` under `ir` without invoking the planner. This is how tests
/// prove the oracle *detects* divergences — hand it a broken IR (dropped
/// from-map, wrong entry count) and the verdict must fail.
[[nodiscard]] OracleVerdict verifyIr(const std::string &name,
                                     const std::string &source,
                                     const ir::MappingIr &ir,
                                     bool provableTrips,
                                     const OracleOptions &options = {});

} // namespace ompdart::verify
