#include "server/protocol.hpp"

namespace ompdart::server {

bool LineFramer::feed(const char *data, std::size_t size) {
  if (overflowed_)
    return false;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (data[i] != '\n')
      continue;
    partial_.append(data + begin, i - begin);
    begin = i + 1;
    if (partial_.size() > kMaxLineBytes) {
      overflowed_ = true;
      partial_.clear();
      return false;
    }
    // Tolerate CRLF peers.
    if (!partial_.empty() && partial_.back() == '\r')
      partial_.pop_back();
    ready_.push_back(std::move(partial_));
    partial_.clear();
  }
  partial_.append(data + begin, size - begin);
  if (partial_.size() > kMaxLineBytes) {
    overflowed_ = true;
    partial_.clear();
    return false;
  }
  return true;
}

std::optional<std::string> LineFramer::next() {
  if (ready_.empty())
    return std::nullopt;
  std::string line = std::move(ready_.front());
  ready_.pop_front();
  return line;
}

json::Value makeOkResponse(const json::Value *id, json::Value result) {
  json::Value response = json::Value::object();
  if (id != nullptr && !id->isNull())
    response.set("id", *id);
  response.set("ok", true);
  response.set("result", std::move(result));
  return response;
}

json::Value makeErrorResponse(const json::Value *id,
                              const std::string &message) {
  json::Value response = json::Value::object();
  if (id != nullptr && !id->isNull())
    response.set("id", *id);
  response.set("ok", false);
  response.set("error", message);
  return response;
}

std::string toWireLine(const json::Value &response) {
  std::string line = response.dump(false);
  line.push_back('\n');
  return line;
}

} // namespace ompdart::server
