#include "server/service.hpp"

#include "support/version.hpp"

#include <thread>
#include <utility>
#include <vector>

namespace ompdart::server {

namespace {

const char *cacheStatusName(Session::PlanCacheStatus status) {
  switch (status) {
  case Session::PlanCacheStatus::Disabled:
    return "disabled";
  case Session::PlanCacheStatus::Uncacheable:
    return "uncacheable";
  case Session::PlanCacheStatus::Miss:
    return "miss";
  case Session::PlanCacheStatus::Hit:
    return "hit";
  }
  return "unknown";
}

/// Reads the request's "tus" array: [{"name", "file", "source"}, ...].
/// "file" defaults to "name" and vice versa; "source" is required.
bool parseTus(const json::Value &request, std::vector<ProjectTu> *tus,
              std::string *error) {
  const json::Value *tusJson = request.find("tus");
  if (tusJson == nullptr || !tusJson->isArray()) {
    *error = "missing \"tus\" array";
    return false;
  }
  tus->reserve(tusJson->items().size());
  for (const json::Value &tuJson : tusJson->items()) {
    if (!tuJson.isObject()) {
      *error = "\"tus\" entries must be objects";
      return false;
    }
    ProjectTu tu;
    tu.name = tuJson.stringOr("name");
    tu.fileName = tuJson.stringOr("file");
    if (tu.name.empty())
      tu.name = tu.fileName;
    if (tu.fileName.empty())
      tu.fileName = tu.name;
    if (tu.name.empty()) {
      *error = "\"tus\" entry is missing both \"name\" and \"file\"";
      return false;
    }
    const json::Value *source = tuJson.find("source");
    if (source == nullptr || source->kind() != json::Value::Kind::String) {
      *error = "\"tus\" entry \"" + tu.name +
               "\" is missing a string \"source\"";
      return false;
    }
    tu.source = source->asString();
    tus->push_back(std::move(tu));
  }
  return true;
}

json::Value stageRunsJson(const Session &session) {
  json::Value runs = json::Value::object();
  for (const Stage stage : allStages())
    runs.set(stageName(stage), session.stageRuns(stage));
  return runs;
}

} // namespace

json::Value ServiceStats::toJson() const {
  json::Value doc = json::Value::object();
  doc.set("requests", requests);
  doc.set("errors", errors);
  doc.set("parseErrors", parseErrors);
  doc.set("pingRequests", pingRequests);
  doc.set("planRequests", planRequests);
  doc.set("batchRequests", batchRequests);
  doc.set("projectRequests", projectRequests);
  doc.set("invalidateRequests", invalidateRequests);
  doc.set("statsRequests", statsRequests);
  doc.set("shutdownRequests", shutdownRequests);
  doc.set("tusPlanned", tusPlanned);
  doc.set("tusReused", tusReused);
  json::Value stagesJson = json::Value::object();
  for (const Stage stage : allStages()) {
    const auto index = static_cast<unsigned>(stage);
    json::Value entry = json::Value::object();
    entry.set("seconds", stageSeconds[index]);
    entry.set("runs", stageRuns[index]);
    stagesJson.set(stageName(stage), std::move(entry));
  }
  doc.set("stages", std::move(stagesJson));
  return doc;
}

/// Atomic mirrors of ServiceStats, bumped with relaxed ordering: requests
/// running on other workers must be able to read a consistent-enough
/// snapshot without taking any lock.
struct PlanService::Counters {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> parseErrors{0};
  std::atomic<std::uint64_t> pingRequests{0};
  std::atomic<std::uint64_t> planRequests{0};
  std::atomic<std::uint64_t> batchRequests{0};
  std::atomic<std::uint64_t> projectRequests{0};
  std::atomic<std::uint64_t> invalidateRequests{0};
  std::atomic<std::uint64_t> statsRequests{0};
  std::atomic<std::uint64_t> shutdownRequests{0};
  std::atomic<std::uint64_t> tusPlanned{0};
  std::atomic<std::uint64_t> tusReused{0};
  /// Per-stage totals; seconds accumulate as integer nanoseconds so the
  /// counters stay lock-free atomics like everything else here.
  std::array<std::atomic<std::uint64_t>, kStageCount> stageNanos{};
  std::array<std::atomic<std::uint64_t>, kStageCount> stageRuns{};

  void addStage(unsigned stage, double seconds, std::uint64_t runs) {
    stageNanos[stage].fetch_add(
        static_cast<std::uint64_t>(seconds * 1e9),
        std::memory_order_relaxed);
    stageRuns[stage].fetch_add(runs, std::memory_order_relaxed);
  }
};

PlanService::PlanService(ServiceOptions options)
    : options_(std::move(options)),
      counters_(std::make_unique<Counters>()) {
  threads_ = options_.threads;
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0)
      threads_ = 1;
  }
  if (options_.config.planCache != nullptr) {
    cache_ = options_.config.planCache;
  } else if (!options_.config.cacheDir.empty() &&
             options_.config.cacheMode != cache::CacheMode::Off) {
    ownedCache_ = std::make_unique<cache::PlanCache>(
        options_.config.cacheDir, options_.config.cacheMode);
    cache_ = ownedCache_.get();
  }
}

PlanService::~PlanService() = default;

ServiceStats PlanService::stats() const {
  const auto load = [](const std::atomic<std::uint64_t> &counter) {
    return counter.load(std::memory_order_relaxed);
  };
  ServiceStats stats;
  stats.requests = load(counters_->requests);
  stats.errors = load(counters_->errors);
  stats.parseErrors = load(counters_->parseErrors);
  stats.pingRequests = load(counters_->pingRequests);
  stats.planRequests = load(counters_->planRequests);
  stats.batchRequests = load(counters_->batchRequests);
  stats.projectRequests = load(counters_->projectRequests);
  stats.invalidateRequests = load(counters_->invalidateRequests);
  stats.statsRequests = load(counters_->statsRequests);
  stats.shutdownRequests = load(counters_->shutdownRequests);
  stats.tusPlanned = load(counters_->tusPlanned);
  stats.tusReused = load(counters_->tusReused);
  for (unsigned stage = 0; stage < kStageCount; ++stage) {
    stats.stageSeconds[stage] =
        static_cast<double>(load(counters_->stageNanos[stage])) * 1e-9;
    stats.stageRuns[stage] = load(counters_->stageRuns[stage]);
  }
  return stats;
}

std::size_t PlanService::heldProjects() const {
  std::lock_guard<std::mutex> lock(projectsMutex_);
  return projects_.size();
}

json::Value PlanService::handleLine(const std::string &line) {
  std::string parseError;
  const std::optional<json::Value> request =
      json::Value::parse(line, &parseError);
  if (!request.has_value()) {
    counters_->requests.fetch_add(1, std::memory_order_relaxed);
    counters_->parseErrors.fetch_add(1, std::memory_order_relaxed);
    counters_->errors.fetch_add(1, std::memory_order_relaxed);
    return makeErrorResponse(nullptr, "invalid JSON: " + parseError);
  }
  return handle(*request);
}

json::Value PlanService::handle(const json::Value &request) {
  counters_->requests.fetch_add(1, std::memory_order_relaxed);
  const json::Value *id =
      request.isObject() ? request.find("id") : nullptr;
  json::Value response = dispatch(request, id);
  if (!response.boolOr("ok"))
    counters_->errors.fetch_add(1, std::memory_order_relaxed);
  return response;
}

json::Value PlanService::dispatch(const json::Value &request,
                                  const json::Value *id) {
  if (!request.isObject())
    return makeErrorResponse(id, "request must be a JSON object");
  const std::string method = request.stringOr("method");
  if (method.empty())
    return makeErrorResponse(id, "missing \"method\"");

  const auto bump = [this](std::atomic<std::uint64_t> &counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  };

  std::string error;
  if (method == "ping") {
    bump(counters_->pingRequests);
    return makeOkResponse(id, handlePing());
  }
  if (method == "plan") {
    bump(counters_->planRequests);
    json::Value result = handlePlan(request, &error);
    return error.empty() ? makeOkResponse(id, std::move(result))
                         : makeErrorResponse(id, error);
  }
  if (method == "batch") {
    bump(counters_->batchRequests);
    json::Value result = handleBatch(request, &error);
    return error.empty() ? makeOkResponse(id, std::move(result))
                         : makeErrorResponse(id, error);
  }
  if (method == "project") {
    bump(counters_->projectRequests);
    json::Value result = handleProject(request, &error);
    return error.empty() ? makeOkResponse(id, std::move(result))
                         : makeErrorResponse(id, error);
  }
  if (method == "invalidate") {
    bump(counters_->invalidateRequests);
    return makeOkResponse(id, handleInvalidate(request));
  }
  if (method == "stats") {
    bump(counters_->statsRequests);
    return makeOkResponse(id, handleStats());
  }
  if (method == "shutdown") {
    bump(counters_->shutdownRequests);
    shutdown_.store(true, std::memory_order_release);
    json::Value result = json::Value::object();
    result.set("stopping", true);
    return makeOkResponse(id, std::move(result));
  }
  return makeErrorResponse(id, "unknown method \"" + method + "\"");
}

json::Value PlanService::handlePing() {
  json::Value result = json::Value::object();
  result.set("pong", true);
  result.set("toolVersion", kToolVersion);
  return result;
}

bool PlanService::requestConfig(const json::Value &request,
                                PipelineConfig *config, std::string *error) {
  *config = options_.config;
  config->planCache = cache_;
  config->imports = nullptr;
  // The server always produces complete artifacts: a request cannot stop
  // the pipeline early or strip the output from reports.
  config->stopAfter.reset();
  config->includeOutputInReport = true;

  const json::Value *overrides = request.find("config");
  if (overrides == nullptr)
    return true;
  if (!overrides->isObject()) {
    *error = "\"config\" must be an object";
    return false;
  }
  for (const auto &[key, value] : overrides->members()) {
    if (key == "costModel") {
      config->costModel = value.asString();
    } else if (key == "firstprivate") {
      config->planner.useFirstprivate = value.asBool(true);
    } else if (key == "hoistUpdates") {
      config->planner.hoistUpdates = value.asBool(true);
    } else if (key == "regionOverLoops") {
      config->planner.extendRegionOverLoops = value.asBool(true);
    } else if (key == "interprocedural") {
      config->planner.interprocedural = value.asBool(true);
    } else if (key == "interprocMaxPasses") {
      config->interprocMaxPasses =
          static_cast<unsigned>(value.asUint(config->interprocMaxPasses));
    } else if (key == "rejectExistingDataDirectives") {
      config->rejectExistingDataDirectives = value.asBool(true);
    } else {
      *error = "unknown config override \"" + key + "\"";
      return false;
    }
  }
  return true;
}

json::Value PlanService::handlePlan(const json::Value &request,
                                    std::string *error) {
  const json::Value *source = request.find("source");
  if (source == nullptr || source->kind() != json::Value::Kind::String) {
    *error = "missing string \"source\"";
    return {};
  }
  std::string fileName = request.stringOr("file");
  std::string name = request.stringOr("name");
  if (fileName.empty())
    fileName = name;
  if (name.empty())
    name = fileName;
  if (fileName.empty()) {
    *error = "missing \"file\" (or \"name\")";
    return {};
  }

  PipelineConfig config;
  if (!requestConfig(request, &config, error))
    return {};

  Session session(fileName, source->asString(), config);
  const bool success = session.run();
  counters_->tusPlanned.fetch_add(1, std::memory_order_relaxed);
  for (const Stage stage : allStages())
    counters_->addStage(static_cast<unsigned>(stage),
                        session.stageSeconds(stage),
                        session.stageRuns(stage));

  json::Value result = json::Value::object();
  result.set("name", name);
  result.set("file", fileName);
  result.set("success", success);
  result.set("cache", cacheStatusName(session.planCacheStatus()));
  result.set("output", session.rewrite());
  result.set("stageRuns", stageRunsJson(session));
  if (request.boolOr("report"))
    result.set("report", session.report().toJson());
  return result;
}

json::Value PlanService::handleBatch(const json::Value &request,
                                     std::string *error) {
  std::vector<ProjectTu> tus;
  if (!parseTus(request, &tus, error))
    return {};

  PipelineConfig config;
  if (!requestConfig(request, &config, error))
    return {};

  std::vector<BatchJob> jobs;
  jobs.reserve(tus.size());
  for (ProjectTu &tu : tus) {
    BatchJob job;
    job.name = std::move(tu.name);
    job.fileName = std::move(tu.fileName);
    job.source = std::move(tu.source);
    jobs.push_back(std::move(job));
  }

  BatchDriver::Options options;
  options.threads = threads_;
  options.config = std::move(config);
  const BatchResult batch = BatchDriver(std::move(options)).run(jobs);
  counters_->tusPlanned.fetch_add(batch.items.size(),
                                  std::memory_order_relaxed);
  for (unsigned stage = 0; stage < kStageCount; ++stage)
    counters_->addStage(stage, batch.stats.stageSeconds[stage],
                        batch.stats.stageRuns[stage]);

  json::Value result = json::Value::object();
  json::Value itemsJson = json::Value::array();
  bool success = !batch.items.empty();
  for (const BatchItem &item : batch.items) {
    json::Value itemJson = json::Value::object();
    itemJson.set("name", item.name);
    itemJson.set("success", item.success);
    itemJson.set("cache", cacheStatusName(item.cacheStatus));
    itemJson.set("output", item.output);
    if (request.boolOr("report"))
      itemJson.set("report", item.report.toJson());
    itemsJson.push(std::move(itemJson));
    success = success && item.success;
  }
  result.set("success", success);
  result.set("items", std::move(itemsJson));
  result.set("stats", batch.stats.toJson());
  return result;
}

std::shared_ptr<IncrementalProject>
PlanService::projectFor(const std::string &name,
                        const PipelineConfig &config) {
  // Keyed by name + plan fingerprint: the replanner's reuse proof requires
  // one fixed config per instance, so each override set replans separately.
  // The shared_ptr copy leaves the lock with the caller: a concurrent
  // "invalidate" erasing the map entry must not destroy an instance that is
  // mid-replan on another worker.
  const std::string key = name + "\n" + planFingerprint(config);
  std::lock_guard<std::mutex> lock(projectsMutex_);
  std::shared_ptr<IncrementalProject> &slot = projects_[key];
  if (slot == nullptr) {
    IncrementalProject::Options options;
    options.threads = threads_;
    slot = std::make_shared<IncrementalProject>(config, options);
  }
  return slot;
}

json::Value PlanService::handleProject(const json::Value &request,
                                       std::string *error) {
  std::vector<ProjectTu> tus;
  if (!parseTus(request, &tus, error))
    return {};

  PipelineConfig config;
  if (!requestConfig(request, &config, error))
    return {};

  std::string projectName = request.stringOr("project");
  if (projectName.empty())
    projectName = "default";

  const std::shared_ptr<IncrementalProject> project =
      projectFor(projectName, config);
  const IncrementalResult replan = project->replan(tus);
  counters_->tusPlanned.fetch_add(replan.tusReplanned,
                                  std::memory_order_relaxed);
  counters_->tusReused.fetch_add(replan.tusReused,
                                 std::memory_order_relaxed);
  for (unsigned stage = 0; stage < kStageCount; ++stage)
    counters_->addStage(stage, replan.stageSeconds[stage],
                        replan.stageRuns[stage]);

  json::Value result = replan.toJson();
  result.set("project", projectName);
  // Rebuild the per-TU array with the payload the wire client needs
  // (outputs + cache status) on top of the replan accounting.
  json::Value tusJson = json::Value::array();
  for (const IncrementalTuResult &tu : replan.tus) {
    json::Value tuJson = json::Value::object();
    tuJson.set("name", tu.name);
    tuJson.set("reason", replanReasonName(tu.reason));
    tuJson.set("summaryReused", tu.summaryReused);
    tuJson.set("success", tu.item.success);
    tuJson.set("cache", cacheStatusName(tu.item.cacheStatus));
    tuJson.set("output", tu.item.output);
    if (request.boolOr("report"))
      tuJson.set("report", tu.item.report.toJson());
    tusJson.push(std::move(tuJson));
  }
  result.set("tus", std::move(tusJson));
  return result;
}

json::Value PlanService::handleInvalidate(const json::Value &request) {
  const std::string projectName = request.stringOr("project");
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(projectsMutex_);
    if (projectName.empty()) {
      dropped = projects_.size();
      projects_.clear();
    } else {
      const std::string prefix = projectName + "\n";
      for (auto it = projects_.begin(); it != projects_.end();) {
        if (it->first.compare(0, prefix.size(), prefix) == 0) {
          it = projects_.erase(it);
          ++dropped;
        } else {
          ++it;
        }
      }
    }
  }
  if (cache_ != nullptr)
    cache_->dropMemos();

  json::Value result = json::Value::object();
  result.set("projectsDropped", static_cast<std::uint64_t>(dropped));
  result.set("memosDropped", cache_ != nullptr);
  return result;
}

json::Value PlanService::handleStats() {
  json::Value result = json::Value::object();
  result.set("server", stats().toJson());
  result.set("projectsHeld", static_cast<std::uint64_t>(heldProjects()));
  result.set("threads", threads_);
  result.set("cacheEnabled", cache_ != nullptr);
  if (cache_ != nullptr)
    result.set("cache", cache_->stats().toJson());
  return result;
}

} // namespace ompdart::server
