// Blocking NDJSON client for the plan server. One instance = one
// connection; call() writes a request line and blocks for its response
// line, so callers get strict request/response pairing (the server answers
// in order per connection). Used by the CLI's `--connect` mode, the server
// tests, and bench_scale.
#pragma once

#include "server/protocol.hpp"
#include "support/json.hpp"

#include <optional>
#include <string>

namespace ompdart::server {

class PlanClient {
public:
  PlanClient() = default;
  ~PlanClient();

  PlanClient(const PlanClient &) = delete;
  PlanClient &operator=(const PlanClient &) = delete;

  /// Connects to a listening plan server. Returns false (and sets `error`)
  /// when nobody listens on `socketPath`.
  [[nodiscard]] bool connect(const std::string &socketPath,
                             std::string *error = nullptr);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Sends one request object and blocks for its response. nullopt (and
  /// `error`) on transport failure — the connection is closed then.
  [[nodiscard]] std::optional<json::Value> call(const json::Value &request,
                                                std::string *error = nullptr);

  /// Raw variant for protocol tests: sends `line` verbatim (a '\n' is
  /// appended) and returns the next response line.
  [[nodiscard]] std::optional<std::string>
  callRaw(const std::string &line, std::string *error = nullptr);

private:
  [[nodiscard]] bool sendAll(const std::string &data, std::string *error);
  [[nodiscard]] std::optional<std::string> readLine(std::string *error);

  int fd_ = -1;
  LineFramer framer_;
};

} // namespace ompdart::server
