#include "server/server.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

namespace ompdart::server {

namespace {

/// Poll interval for blocking reads/accepts: the longest a stop request can
/// go unnoticed by an idle thread.
constexpr int kPollMillis = 100;

bool fillSockaddr(const std::string &path, sockaddr_un *addr,
                  std::string *error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error != nullptr)
      *error = "socket path too long (" + std::to_string(path.size()) +
               " bytes, max " +
               std::to_string(sizeof(addr->sun_path) - 1) + "): " + path;
    return false;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// Writes all of `data`, retrying on EINTR and partial sends. MSG_NOSIGNAL
/// turns a vanished peer into EPIPE instead of killing the process.
bool sendAll(int fd, const std::string &data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Advisory flock on a sidecar file, held for the object's lifetime (same
/// pattern as the cache shard saves). Blocks until acquired; acquisition
/// failure (unwritable directory) degrades to running unlocked.
class FileLock {
public:
  explicit FileLock(const std::string &path) {
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0)
      while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
      }
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;

private:
  int fd_ = -1;
};

} // namespace

bool isSocketLive(const std::string &path) {
  sockaddr_un addr{};
  if (!fillSockaddr(path, &addr, nullptr))
    return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    return false;
  const bool live =
      ::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                sizeof(addr)) == 0;
  ::close(fd);
  return live;
}

PlanServer::PlanServer(ServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  if (options_.workers == 0) {
    unsigned hardware = std::thread::hardware_concurrency();
    if (hardware == 0)
      hardware = 1;
    options_.workers = hardware < 4 ? hardware : 4;
  }
}

PlanServer::~PlanServer() {
  stop();
  wait();
}

bool PlanServer::start(std::string *error) {
  if (started_) {
    if (error != nullptr)
      *error = "server already started";
    return false;
  }

  sockaddr_un addr{};
  if (!fillSockaddr(options_.socketPath, &addr, error))
    return false;

  // Stale-socket cleanup: a socket file left by a crashed server refuses
  // connections, so a probe distinguishes it from a live daemon. Anything
  // else at the path (regular file, directory) is never deleted. The
  // probe-unlink-bind-listen sequence runs under an flock so two daemons
  // launched concurrently cannot both see a dead socket — the second's
  // unlink+bind would silently orphan the first's already-bound listener.
  // The second entrant blocks until the first has listen()ed, then its
  // probe finds the live daemon and errors out.
  const FileLock startLock(options_.socketPath + ".lock");
  struct stat st {};
  if (::lstat(options_.socketPath.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      if (error != nullptr)
        *error = "path exists and is not a socket: " + options_.socketPath;
      return false;
    }
    if (isSocketLive(options_.socketPath)) {
      if (error != nullptr)
        *error = "another server is live on " + options_.socketPath;
      return false;
    }
    ::unlink(options_.socketPath.c_str());
  }

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    if (error != nullptr)
      *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = std::string("bind(): ") + std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    return false;
  }
  if (::listen(listenFd_, 64) != 0) {
    if (error != nullptr)
      *error = std::string("listen(): ") + std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    ::unlink(options_.socketPath.c_str());
    return false;
  }

  started_ = true;
  stopping_.store(false, std::memory_order_release);
  acceptThread_ = std::thread([this]() { acceptLoop(); });
  workerThreads_.reserve(options_.workers);
  for (unsigned i = 0; i < options_.workers; ++i)
    workerThreads_.emplace_back([this]() { workerLoop(); });
  return true;
}

void PlanServer::stop() {
  if (!started_)
    return;
  if (stopping_.exchange(true, std::memory_order_acq_rel))
    return;
  queueCv_.notify_all();
}

void PlanServer::wait() {
  if (!started_)
    return;
  if (acceptThread_.joinable())
    acceptThread_.join();
  for (std::thread &worker : workerThreads_)
    if (worker.joinable())
      worker.join();
  workerThreads_.clear();

  // Threads are down; release the socket.
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  ::unlink(options_.socketPath.c_str());

  // Drop connections that were accepted but never picked up by a worker.
  std::lock_guard<std::mutex> lock(queueMutex_);
  for (const int fd : pendingFds_)
    ::close(fd);
  pendingFds_.clear();
  started_ = false;
}

void PlanServer::acceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listenFd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (ready == 0)
      continue;
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(queueMutex_);
      pendingFds_.push_back(fd);
    }
    queueCv_.notify_one();
  }
}

void PlanServer::workerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queueMutex_);
      queueCv_.wait(lock, [this]() {
        return !pendingFds_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (pendingFds_.empty()) {
        // stopping_ and nothing queued: done.
        return;
      }
      fd = pendingFds_.front();
      pendingFds_.pop_front();
    }
    handleConnection(fd);
    connectionsServed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanServer::handleConnection(int fd) {
  LineFramer framer;
  char buffer[64 * 1024];
  bool open = true;
  while (open) {
    // Serve every fully received line before reading more; a request that
    // arrived before a stop still gets its response (graceful shutdown
    // finishes in-flight work).
    while (std::optional<std::string> line = framer.next()) {
      if (line->empty())
        continue;
      const json::Value response = service_.handleLine(*line);
      if (!sendAll(fd, toWireLine(response))) {
        open = false;
        break;
      }
      if (service_.shutdownRequested()) {
        stop();
        open = false;
        break;
      }
    }
    if (!open)
      break;
    if (stopping_.load(std::memory_order_acquire))
      break;

    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (ready == 0)
      continue;
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR)
        continue;
      break; // EOF or error: peer is gone.
    }
    if (!framer.feed(buffer, static_cast<std::size_t>(n))) {
      // Oversized line: report once and drop the connection.
      sendAll(fd, toWireLine(makeErrorResponse(
                      nullptr, "request line exceeds size limit")));
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

} // namespace ompdart::server
