// Wire protocol of the plan server: newline-delimited JSON (NDJSON) over a
// local stream socket.
//
// Each request is one JSON object on one line; the server answers each with
// exactly one JSON object line, in request order per connection:
//
//   -> {"id": 1, "method": "plan", "file": "a.c", "source": "..."}
//   <- {"id": 1, "ok": true, "result": {"success": true, "output": "...",
//       "cache": "miss", "stageRuns": {...}}}
//
// Methods: "ping", "plan", "batch", "project", "invalidate", "stats",
// "shutdown" — see src/server/service.hpp for per-method semantics. The
// optional "id" member is echoed verbatim into the response so clients can
// pipeline requests. Malformed JSON never kills the connection: the server
// replies {"ok": false, "error": "..."} (no id — it could not be parsed)
// and keeps reading.
//
// This header owns the framing (LineFramer: incremental byte feed ->
// complete lines, with an oversize guard) and the response envelope
// builders; it knows nothing about sockets or the pipeline.
#pragma once

#include "support/json.hpp"

#include <cstddef>
#include <deque>
#include <optional>
#include <string>

namespace ompdart::server {

/// Upper bound on one request/response line. Generous (a project request
/// carries whole source trees) but finite, so a protocol error or a
/// malicious peer cannot balloon the server's memory.
constexpr std::size_t kMaxLineBytes = 256ull * 1024 * 1024;

/// Incremental NDJSON framing: feed() raw bytes as they arrive, next()
/// yields complete lines (without the terminating '\n') in order.
class LineFramer {
public:
  /// Appends received bytes. Returns false when the in-progress line
  /// exceeded kMaxLineBytes — the connection is poisoned and should close
  /// (the pending oversize data is discarded).
  bool feed(const char *data, std::size_t size);

  /// Next complete line, if any arrived.
  [[nodiscard]] std::optional<std::string> next();

  /// True when feed() ever overflowed the line guard.
  [[nodiscard]] bool overflowed() const { return overflowed_; }

private:
  std::string partial_;
  std::deque<std::string> ready_;
  bool overflowed_ = false;
};

/// {"ok": true, "result": <result>} (+ echoed "id" when the request had
/// one).
[[nodiscard]] json::Value makeOkResponse(const json::Value *id,
                                         json::Value result);

/// {"ok": false, "error": <message>} (+ echoed "id" when available).
[[nodiscard]] json::Value makeErrorResponse(const json::Value *id,
                                            const std::string &message);

/// Serializes a response onto one wire line (compact dump + '\n').
[[nodiscard]] std::string toWireLine(const json::Value &response);

} // namespace ompdart::server
