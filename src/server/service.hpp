// Request dispatch of the plan server, independent of any transport.
//
// `PlanService` owns the hot state that makes a daemon worth running — one
// shared PlanCache (sharded index + in-memory plan/summary memos) and one
// `IncrementalProject` per served project — and maps protocol requests onto
// the existing drivers:
//
//   "ping"        liveness + tool version
//   "plan"        one TU through a Session          {file, source, [name],
//                                                    [report], [config]}
//   "batch"       N independent TUs via BatchDriver {tus: [...], [config]}
//   "project"     N TUs as ONE program via the incremental replanner
//                 {tus: [...], [project], [report], [config]} — repeated
//                 requests for the same project replan only what changed
//   "invalidate"  drop held project state (+ cache memos) {[project]}
//   "stats"       server counters + cache counters, snapshot-consistent
//   "shutdown"    ask the hosting server to stop accepting
//
// The service is thread-safe: concurrent handle() calls may interleave
// freely (the cache is lock-striped, projects serialize per instance, and
// service counters are atomics). Transports (src/server/server.cpp) and
// tests call `handleLine`/`handle` directly — the wire layer adds nothing
// but framing.
#pragma once

#include "driver/batch.hpp"
#include "driver/incremental.hpp"
#include "driver/pipeline.hpp"
#include "server/protocol.hpp"
#include "support/json.hpp"

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ompdart::server {

struct ServiceOptions {
  /// Base pipeline configuration. Requests may override the planning
  /// switches per call via their "config" member; cache wiring
  /// (cacheDir/cacheMode) is fixed at service construction.
  PipelineConfig config;
  /// Worker threads for batch/project requests; 0 = hardware concurrency.
  unsigned threads = 0;
};

/// Request counters, readable while requests are in flight.
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;      ///< error responses (including parse errors)
  std::uint64_t parseErrors = 0; ///< lines that were not valid JSON
  std::uint64_t pingRequests = 0;
  std::uint64_t planRequests = 0;
  std::uint64_t batchRequests = 0;
  std::uint64_t projectRequests = 0;
  std::uint64_t invalidateRequests = 0;
  std::uint64_t statsRequests = 0;
  std::uint64_t shutdownRequests = 0;
  std::uint64_t tusPlanned = 0; ///< TUs that ran a pipeline Session
  std::uint64_t tusReused = 0;  ///< project TUs served from held state
  /// Cumulative per-stage pipeline wall seconds / executions across every
  /// Session this service ran (plan, batch and project requests), indexed
  /// by Stage. Serialized as the "stages" breakdown of the stats response.
  std::array<double, kStageCount> stageSeconds{};
  std::array<std::uint64_t, kStageCount> stageRuns{};

  [[nodiscard]] json::Value toJson() const;
};

class PlanService {
public:
  explicit PlanService(ServiceOptions options);
  ~PlanService();

  PlanService(const PlanService &) = delete;
  PlanService &operator=(const PlanService &) = delete;

  /// Parses one wire line and dispatches it. Invalid JSON yields an
  /// {"ok": false} reply (with no id — it could not be recovered) and
  /// counts as a parse error; the connection stays usable.
  [[nodiscard]] json::Value handleLine(const std::string &line);

  /// Dispatches one parsed request object.
  [[nodiscard]] json::Value handle(const json::Value &request);

  /// True once a "shutdown" request was accepted. The hosting transport
  /// polls this after each request.
  [[nodiscard]] bool shutdownRequested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// The shared cache (null when the service runs cacheless).
  [[nodiscard]] cache::PlanCache *cache() { return cache_; }

  [[nodiscard]] ServiceStats stats() const;
  /// Number of (project, config) replanner instances currently held.
  [[nodiscard]] std::size_t heldProjects() const;

private:
  struct Counters;

  [[nodiscard]] json::Value dispatch(const json::Value &request,
                                     const json::Value *id);
  [[nodiscard]] json::Value handlePing();
  [[nodiscard]] json::Value handlePlan(const json::Value &request,
                                       std::string *error);
  [[nodiscard]] json::Value handleBatch(const json::Value &request,
                                        std::string *error);
  [[nodiscard]] json::Value handleProject(const json::Value &request,
                                          std::string *error);
  [[nodiscard]] json::Value handleInvalidate(const json::Value &request);
  [[nodiscard]] json::Value handleStats();

  /// Base config + per-request "config" overrides, wired to the shared
  /// cache. Returns false (and sets `error`) on unknown override keys.
  [[nodiscard]] bool requestConfig(const json::Value &request,
                                   PipelineConfig *config,
                                   std::string *error);
  [[nodiscard]] std::shared_ptr<IncrementalProject>
  projectFor(const std::string &name, const PipelineConfig &config);

  ServiceOptions options_;
  unsigned threads_ = 1;
  std::unique_ptr<cache::PlanCache> ownedCache_;
  cache::PlanCache *cache_ = nullptr;

  mutable std::mutex projectsMutex_;
  /// Keyed by project name + '\n' + plan fingerprint: the replanner's reuse
  /// proof requires a fixed config per instance, so each override set gets
  /// its own. Held by shared_ptr: handlers copy the pointer out under the
  /// lock and replan WITHOUT it, so a concurrent "invalidate" only drops
  /// the map reference and the instance outlives any in-flight replan.
  std::map<std::string, std::shared_ptr<IncrementalProject>> projects_;

  std::atomic<bool> shutdown_{false};
  std::unique_ptr<Counters> counters_;
};

} // namespace ompdart::server
