// Persistent plan-server daemon over a Unix-domain stream socket.
//
// `PlanServer` binds `ServerOptions::socketPath`, accepts connections on a
// dedicated thread, and fans them out to a pool of connection workers. Each
// worker reads NDJSON request lines (src/server/protocol.hpp), dispatches
// them through the shared `PlanService` — where the plan cache and the
// incremental project replanners stay hot across requests AND across
// connections — and writes one response line per request, in order.
//
// Lifecycle:
//   start()   stale-socket cleanup + bind + listen + spawn threads. A
//             leftover socket file from a crashed server is detected by a
//             connect probe: connection refused means nobody is listening,
//             so the file is unlinked and the path rebound; a successful
//             probe means a live server owns the path and start() fails.
//   stop()    graceful: stop accepting, wake idle workers, let in-flight
//             requests finish and their responses flush; queued-but-unread
//             connections are closed unserved. Idempotent, callable from
//             any thread — including a worker that just served a
//             "shutdown" request.
//   wait()    joins the accept and worker threads; returns after stop()
//             (or a "shutdown" request) completed.
//
// The socket file is unlinked on stop, so a clean shutdown leaves nothing
// behind.
#pragma once

#include "server/service.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ompdart::server {

struct ServerOptions {
  /// Filesystem path of the listening socket (sockaddr_un, so at most
  /// ~100 bytes).
  std::string socketPath;
  /// Connection-handling worker threads; 0 = min(4, hardware).
  unsigned workers = 0;
  ServiceOptions service;
};

class PlanServer {
public:
  explicit PlanServer(ServerOptions options);
  ~PlanServer();

  PlanServer(const PlanServer &) = delete;
  PlanServer &operator=(const PlanServer &) = delete;

  /// Binds and starts serving. Returns false (and sets `error`) when the
  /// path is too long for sockaddr_un, another server is live on it, or a
  /// socket syscall fails.
  [[nodiscard]] bool start(std::string *error);

  /// Blocks until the server stopped (via stop() or a "shutdown" request)
  /// and every thread joined.
  void wait();

  /// Requests a graceful stop (see file comment). Safe to call from any
  /// thread, any number of times.
  void stop();

  [[nodiscard]] bool running() const {
    return started_ && !stopping_.load(std::memory_order_acquire);
  }
  [[nodiscard]] PlanService &service() { return service_; }
  [[nodiscard]] const std::string &socketPath() const {
    return options_.socketPath;
  }
  /// Connections fully served since start.
  [[nodiscard]] std::uint64_t connectionsServed() const {
    return connectionsServed_.load(std::memory_order_relaxed);
  }

private:
  void acceptLoop();
  void workerLoop();
  void handleConnection(int fd);

  ServerOptions options_;
  PlanService service_;

  int listenFd_ = -1;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> connectionsServed_{0};

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<int> pendingFds_;

  std::thread acceptThread_;
  std::vector<std::thread> workerThreads_;
};

/// True when a socket file exists at `path` with a live listener behind it
/// (used by start()'s stale-socket cleanup and by tests).
[[nodiscard]] bool isSocketLive(const std::string &path);

} // namespace ompdart::server
