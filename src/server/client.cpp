#include "server/client.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ompdart::server {

PlanClient::~PlanClient() { close(); }

bool PlanClient::connect(const std::string &socketPath, std::string *error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr)
      *error = "socket path too long: " + socketPath;
    return false;
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr)
      *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr *>(&addr),
                sizeof(addr)) != 0) {
    if (error != nullptr)
      *error = "connect(" + socketPath + "): " + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  framer_ = LineFramer();
  return true;
}

void PlanClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool PlanClient::sendAll(const std::string &data, std::string *error) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR)
        continue;
      if (error != nullptr)
        *error = std::string("send(): ") + std::strerror(errno);
      close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> PlanClient::readLine(std::string *error) {
  while (true) {
    if (std::optional<std::string> line = framer_.next())
      return line;
    char buffer[64 * 1024];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR)
        continue;
      if (error != nullptr)
        *error = std::string("recv(): ") + std::strerror(errno);
      close();
      return std::nullopt;
    }
    if (n == 0) {
      if (error != nullptr)
        *error = "server closed the connection";
      close();
      return std::nullopt;
    }
    if (!framer_.feed(buffer, static_cast<std::size_t>(n))) {
      if (error != nullptr)
        *error = "response line exceeds size limit";
      close();
      return std::nullopt;
    }
  }
}

std::optional<std::string> PlanClient::callRaw(const std::string &line,
                                               std::string *error) {
  if (fd_ < 0) {
    if (error != nullptr)
      *error = "not connected";
    return std::nullopt;
  }
  std::string wire = line;
  wire.push_back('\n');
  if (!sendAll(wire, error))
    return std::nullopt;
  return readLine(error);
}

std::optional<json::Value> PlanClient::call(const json::Value &request,
                                            std::string *error) {
  const std::optional<std::string> line = callRaw(request.dump(false), error);
  if (!line.has_value())
    return std::nullopt;
  std::string parseError;
  std::optional<json::Value> response =
      json::Value::parse(*line, &parseError);
  if (!response.has_value() && error != nullptr)
    *error = "malformed response: " + parseError;
  return response;
}

} // namespace ompdart::server
