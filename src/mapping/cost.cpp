#include "mapping/cost.hpp"

namespace ompdart {

const char *candidateKindName(CandidateKind kind) {
  switch (kind) {
  case CandidateKind::MapAtRegion:
    return "map-at-region";
  case CandidateKind::UpdateHoisted:
    return "update-hoisted";
  case CandidateKind::UpdateAtAccess:
    return "update-at-access";
  case CandidateKind::Firstprivate:
    return "firstprivate";
  case CandidateKind::RegionOverLoops:
    return "region-over-loops";
  case CandidateKind::RegionPerKernel:
    return "region-per-kernel";
  }
  return "unknown";
}

std::size_t CostModel::choose(const std::vector<Candidate> &set) const {
  std::size_t best = 0;
  double bestScore = score(set.front());
  for (std::size_t i = 1; i < set.size(); ++i) {
    const double candidateScore = score(set[i]);
    if (candidateScore < bestScore) {
      best = i;
      bestScore = candidateScore;
    }
  }
  return best;
}

double SimCostModel::score(const Candidate &candidate) const {
  // firstprivate passes the value with the kernel launch arguments: no
  // memcpy, only (already-paid) launch overhead.
  if (candidate.kind == CandidateKind::Firstprivate)
    return 0.0;
  const double bytesPerSec = candidate.deviceToHost
                                 ? rates_.deviceToHostBytesPerSec
                                 : rates_.hostToDeviceBytesPerSec;
  const double perOccurrence =
      static_cast<double>(candidate.transfersPerOccurrence) *
          rates_.perTransferLatencySec +
      static_cast<double>(candidate.bytesPerOccurrence) / bytesPerSec;
  return perOccurrence * static_cast<double>(candidate.occurrences);
}

std::unique_ptr<CostModel> makeCostModel(const std::string &name) {
  if (name.empty() || name == "paper-greedy")
    return std::make_unique<PaperGreedyCostModel>();
  if (name == "sim")
    return std::make_unique<SimCostModel>();
  return nullptr;
}

const std::vector<std::string> &costModelNames() {
  static const std::vector<std::string> names = {"paper-greedy", "sim"};
  return names;
}

} // namespace ompdart
