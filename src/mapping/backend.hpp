// Plan-consumer backends: the pluggable emission side of the pipeline.
//
// A planned Mapping IR can be materialized in several ways; each way is a
// `PlanConsumer`:
//
//   SourceRewriteBackend — renders the IR as text edits on the original
//     buffer (the classic §IV-F transformed source). Needs only the IR and
//     the source text — no AST.
//   JsonBackend — serializes the IR as the canonical plan JSON (the single
//     schema shared with Report).
//   ApplyToInterpBackend — resolves the IR against the already-parsed unit
//     and executes the program under the simulated runtime with the plan
//     applied as an execution overlay: no rewrite, no reparse. This is how
//     the experiment harness measures the OMPDart variant without paying
//     the rewrite→reparse round-trip.
//
// Backends consume the self-contained IR; `PlanConsumerInput` carries the
// optional extra inputs (source buffer, parsed unit) a given backend needs.
#pragma once

#include "frontend/ast.hpp"
#include "interp/interp.hpp"
#include "mapping/ir.hpp"
#include "support/json.hpp"
#include "support/source_manager.hpp"

#include <string>

namespace ompdart {

/// Inputs a backend may consume. `ir` is required; `source` and `unit` are
/// optional extras (a backend fails with a descriptive error when a needed
/// input is missing).
struct PlanConsumerInput {
  const ir::MappingIr *ir = nullptr;
  const SourceManager *source = nullptr;
  const TranslationUnit *unit = nullptr;
};

/// Interface every plan emission backend implements.
class PlanConsumer {
public:
  virtual ~PlanConsumer() = default;

  [[nodiscard]] virtual const char *name() const = 0;

  /// Consumes the plan. Returns false (with `error()` set) when a required
  /// input is missing or the IR cannot be resolved/applied.
  virtual bool consume(const PlanConsumerInput &input) = 0;

  [[nodiscard]] const std::string &error() const { return error_; }

protected:
  bool fail(std::string message) {
    error_ = std::move(message);
    return false;
  }

  std::string error_;
};

/// Today's rewriter behind the backend interface: IR + original text ->
/// transformed source.
class SourceRewriteBackend final : public PlanConsumer {
public:
  [[nodiscard]] const char *name() const override { return "source-rewrite"; }
  bool consume(const PlanConsumerInput &input) override;

  [[nodiscard]] const std::string &transformedSource() const {
    return transformed_;
  }

private:
  std::string transformed_;
};

/// IR -> canonical plan JSON (the one schema Report embeds too).
class JsonBackend final : public PlanConsumer {
public:
  [[nodiscard]] const char *name() const override { return "json"; }
  bool consume(const PlanConsumerInput &input) override;

  [[nodiscard]] const json::Value &value() const { return value_; }

private:
  json::Value value_;
};

/// IR + parsed unit -> interpreter run with the plan applied as an
/// execution overlay (no rewrite→reparse round-trip).
class ApplyToInterpBackend final : public PlanConsumer {
public:
  explicit ApplyToInterpBackend(interp::InterpOptions options = {})
      : options_(options) {}

  [[nodiscard]] const char *name() const override {
    return "apply-to-interp";
  }
  bool consume(const PlanConsumerInput &input) override;

  [[nodiscard]] const interp::RunResult &result() const { return result_; }
  [[nodiscard]] const interp::PlanOverlay &overlay() const {
    return overlay_;
  }

private:
  interp::InterpOptions options_;
  /// Owns the section expressions synthesized while resolving IR extents.
  ASTContext scratch_;
  interp::PlanOverlay overlay_;
  interp::RunResult result_;
};

} // namespace ompdart
