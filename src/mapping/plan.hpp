// Output of the mapping planner: a per-function target-data region with map
// clauses, update insertions and firstprivate additions (Table II of the
// paper lists exactly these constructs). The rewriter consumes this plan to
// produce transformed source.
#pragma once

#include "frontend/ast.hpp"
#include "mapping/ir.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace ompdart {

enum class UpdateDirection { To, From };

[[nodiscard]] inline const char *updateDirectionName(UpdateDirection dir) {
  return dir == UpdateDirection::To ? "to" : "from";
}

/// One list item of the region's map clause set.
struct MapSpec {
  VarDecl *var = nullptr;
  OmpMapType mapType = OmpMapType::ToFrom;
  /// Map-type modifiers. `present` is set by the planner's warm-callee
  /// post-pass when every call site of the region's function provably
  /// executes inside an enclosing caller region that already maps this
  /// object — such maps are reference-count transitions (1->2 / 2->1) that
  /// move no bytes, and the transfer predictor skips them.
  ir::MapModifiers modifiers;
  /// Provable region entries that pay this item's transition copies (see
  /// ir::MapItem::coldEntries). Initialized to the region's entryCount;
  /// the warm-callee post-pass subtracts entries arriving through call
  /// sites that sit inside a caller region already mapping the object.
  std::uint64_t coldEntries = 1;
  /// Item spelling including array section, e.g. "a[0:n]"; plain variable
  /// name when empty.
  std::string section;
  /// Structured section length (what `section` spells), for consumers that
  /// need to evaluate the extent rather than re-parse the spelling.
  ir::Extent extent;
  /// Estimated bytes this mapping moves one way (for reports/ablations).
  std::uint64_t approxBytes = 0;
};

/// Where an update directive lands relative to its anchor statement
/// (paper §IV-F: loop-conditional accesses need body-begin/body-end forms).
enum class UpdatePlacement {
  Before,    ///< Directly before the anchor statement (typical `from`).
  After,     ///< Directly after the anchor statement (typical `to`).
  BodyBegin, ///< At the start of the anchor loop's body.
  BodyEnd,   ///< At the end of the anchor loop's body.
};

/// One `target update` directive to insert.
struct UpdateInsertion {
  VarDecl *var = nullptr;
  UpdateDirection direction = UpdateDirection::From;
  /// Statement the directive attaches to (Algorithm 1 output; may be a loop
  /// statement after hoisting).
  const Stmt *anchor = nullptr;
  UpdatePlacement placement = UpdatePlacement::Before;
  std::string section;
  /// Structured section length (mirrors the map-clause extent).
  ir::Extent extent;
  /// Estimated bytes one execution of this update moves.
  std::uint64_t approxBytes = 0;
  /// Statically provable executions per program run: region entries times
  /// the constant trip counts of region loops enclosing the directive's
  /// insertion point (loops with unknown bounds count once, so this is the
  /// provable floor the transfer predictor charges).
  std::uint64_t executions = 1;
  /// True when the anchor is a loop statement rather than the access stmt.
  bool hoisted = false;
};

/// firstprivate(var) appended to one kernel directive.
struct FirstprivateInsertion {
  const OmpDirectiveStmt *kernel = nullptr;
  VarDecl *var = nullptr;
};

/// The single target-data region planned for one function (paper §IV-D:
/// "for each function with at least one true dependency, we create a single
/// target data region that encompasses all the kernels").
struct RegionPlan {
  const FunctionDecl *function = nullptr;
  /// Region spans [startStmt .. endStmt] inclusive, both children of the
  /// same compound statement.
  const Stmt *startStmt = nullptr;
  const Stmt *endStmt = nullptr;
  std::vector<MapSpec> maps;
  std::vector<UpdateInsertion> updates;
  std::vector<FirstprivateInsertion> firstprivates;
  /// When the region is exactly one kernel, clauses are appended to its
  /// pragma instead of creating a new target data directive.
  const OmpDirectiveStmt *soleKernel = nullptr;
  /// Statically provable region entries per program run: how often the
  /// enclosing function executes (interprocedural call-count estimate)
  /// times the constant trips of loops enclosing the region start. Each
  /// entry/exit pays the present-table 0->1/1->0 transition copies, so the
  /// transfer predictor multiplies map traffic by this.
  std::uint64_t entryCount = 1;

  [[nodiscard]] bool appendsToKernel() const { return soleKernel != nullptr; }
};

struct MappingPlan {
  std::vector<RegionPlan> regions;

  [[nodiscard]] const RegionPlan *
  regionFor(const FunctionDecl *fn) const {
    for (const RegionPlan &region : regions)
      if (region.function == fn)
        return &region;
    return nullptr;
  }

  [[nodiscard]] std::size_t totalUpdates() const {
    std::size_t count = 0;
    for (const RegionPlan &region : regions)
      count += region.updates.size();
    return count;
  }
};

} // namespace ompdart
