// Self-contained Mapping IR: the value-semantic, JSON-round-trippable form
// of a mapping plan. Unlike `MappingPlan` (whose nodes are raw AST
// pointers), the IR references program entities by stable symbol ids plus
// source ranges, so plans can outlive the frontend: they serialize, diff,
// cache across sessions, and re-apply to the original text (or to a live
// interpreter) without reparsing.
//
// The map-type enum is widened into a lattice modeled on libomptarget's
// `tgt_map_type` flag word: the base direction (alloc ⊑ to, from ⊑ tofrom)
// joins monotonically, and the `always` / `present` / `close` modifiers are
// orthogonal flag bits (`delete` is a base type that forces unmapping, as
// in the runtime). `tgtMapTypeFlags` produces the exact bit encoding the
// runtime would see, which is what the README's modifier table documents.
#pragma once

#include "support/json.hpp"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ompdart {
struct MappingPlan;
} // namespace ompdart

namespace ompdart::ir {

// ---------------------------------------------------------------------------
// Map-type lattice
// ---------------------------------------------------------------------------

/// Base map types, ordered as a lattice on data movement:
/// Alloc ⊑ To ⊑ ToFrom and Alloc ⊑ From ⊑ ToFrom, with join(To, From) =
/// ToFrom. Release and Delete are unmapping types outside the movement
/// order.
enum class MapType { Alloc, To, From, ToFrom, Release, Delete };

/// Orthogonal modifiers (OpenMP 5.2 map-type modifiers; each corresponds to
/// one libomptarget `tgt_map_type` flag bit).
struct MapModifiers {
  bool always = false;  ///< copy regardless of the reference count
  bool present = false; ///< runtime error if not already mapped
  bool close = false;   ///< allocate close to the device

  [[nodiscard]] bool any() const { return always || present || close; }
  [[nodiscard]] bool operator==(const MapModifiers &other) const {
    return always == other.always && present == other.present &&
           close == other.close;
  }
};

/// Least upper bound on the movement lattice. Joining with Release/Delete
/// yields the non-unmapping operand (unmapping never strengthens movement).
[[nodiscard]] MapType joinMapType(MapType a, MapType b);

/// Partial order of the movement lattice (a ⊑ b: b moves at least as much
/// data as a). Release/Delete are only comparable to themselves.
[[nodiscard]] bool mapTypeLE(MapType a, MapType b);

/// libomptarget `tgt_map_type` flag word for a type + modifiers
/// (OMP_TGT_MAPTYPE_TO|FROM|ALWAYS|DELETE|CLOSE|PRESENT bits).
[[nodiscard]] std::uint64_t tgtMapTypeFlags(MapType type,
                                            MapModifiers modifiers = {});

[[nodiscard]] const char *mapTypeName(MapType type);
[[nodiscard]] std::optional<MapType> mapTypeFromName(const std::string &name);

/// Clause spelling including modifiers, e.g. "always, present, to".
[[nodiscard]] std::string mapTypeSpellingWithModifiers(MapType type,
                                                       MapModifiers modifiers);

enum class UpdateDirection { To, From };
[[nodiscard]] const char *updateDirectionName(UpdateDirection direction);
[[nodiscard]] std::optional<UpdateDirection>
updateDirectionFromName(const std::string &name);

/// Where an update directive lands relative to its anchor statement
/// (paper §IV-F: loop-conditional accesses need body-begin/body-end forms).
enum class UpdatePlacement { Before, After, BodyBegin, BodyEnd };
[[nodiscard]] const char *updatePlacementName(UpdatePlacement placement);
[[nodiscard]] std::optional<UpdatePlacement>
updatePlacementFromName(const std::string &name);

// ---------------------------------------------------------------------------
// Symbols & anchors
// ---------------------------------------------------------------------------

using SymbolId = std::uint32_t;
inline constexpr SymbolId kInvalidSymbol = static_cast<SymbolId>(-1);

/// One program variable the plan references. `declOffset` is the byte
/// offset of its declaration in the original buffer — the stable identity
/// backends use to re-resolve the symbol against a fresh parse.
struct Symbol {
  SymbolId id = kInvalidSymbol;
  std::string name;
  std::size_t declOffset = 0;
  unsigned declLine = 0;
  bool isGlobal = false;
  bool isParam = false;
  std::uint64_t elemBytes = 0; ///< scalar element size of the mapped data

  [[nodiscard]] bool operator==(const Symbol &other) const {
    return id == other.id && name == other.name &&
           declOffset == other.declOffset && declLine == other.declLine &&
           isGlobal == other.isGlobal && isParam == other.isParam &&
           elemBytes == other.elemBytes;
  }
};

/// Mapped section length. `Whole` maps the entire object; `Const` a fixed
/// element count; `Expr` a source-spelled length (e.g. "n" or "nb * hid")
/// evaluated by the consumer in the program's scope.
struct Extent {
  enum class Kind { Whole, Const, Expr };
  Kind kind = Kind::Whole;
  std::uint64_t constElems = 0;
  std::string expr;

  [[nodiscard]] static Extent whole() { return Extent{}; }
  [[nodiscard]] static Extent constant(std::uint64_t elems) {
    Extent extent;
    extent.kind = Kind::Const;
    extent.constElems = elems;
    return extent;
  }
  [[nodiscard]] static Extent symbolic(std::string spelling) {
    Extent extent;
    extent.kind = Kind::Expr;
    extent.expr = std::move(spelling);
    return extent;
  }

  [[nodiscard]] bool operator==(const Extent &other) const {
    return kind == other.kind && constElems == other.constElems &&
           expr == other.expr;
  }
};

/// A statement referenced by source range instead of AST pointer. For loop
/// anchors the body sub-range is recorded too, so BodyBegin/BodyEnd
/// placements can be materialized without the AST.
struct StmtAnchor {
  std::size_t beginOffset = 0;
  std::size_t endOffset = 0;
  unsigned line = 0;    ///< 1-based line of beginOffset
  unsigned endLine = 0; ///< 1-based line of endOffset
  bool hasBody = false;
  bool bodyIsCompound = false;
  std::size_t bodyBeginOffset = 0;
  std::size_t bodyEndOffset = 0;

  [[nodiscard]] bool operator==(const StmtAnchor &other) const {
    return beginOffset == other.beginOffset &&
           endOffset == other.endOffset && line == other.line &&
           endLine == other.endLine && hasBody == other.hasBody &&
           bodyIsCompound == other.bodyIsCompound &&
           bodyBeginOffset == other.bodyBeginOffset &&
           bodyEndOffset == other.bodyEndOffset;
  }
};

// ---------------------------------------------------------------------------
// Plan items
// ---------------------------------------------------------------------------

/// One list item of a region's map clause set.
struct MapItem {
  SymbolId symbol = kInvalidSymbol;
  MapType type = MapType::ToFrom;
  MapModifiers modifiers;
  /// Full item spelling, e.g. "a[0:n]"; the plain variable name otherwise.
  std::string item;
  Extent extent;
  /// Estimated bytes this mapping moves one way (reports / cost models).
  std::uint64_t approxBytes = 0;
  /// Of the region's provable entries, how many pay this item's
  /// present-table 0->1/1->0 transition copies. Defaults to the region's
  /// entryCount; the planner's warm-callee accounting lowers it for
  /// entries that provably execute inside an enclosing caller region that
  /// already maps the object (refcount 1->2 transitions move nothing).
  /// 0 means every entry is warm — such items also carry the `present`
  /// modifier.
  std::uint64_t coldEntries = 1;

  [[nodiscard]] bool operator==(const MapItem &other) const {
    return symbol == other.symbol && type == other.type &&
           modifiers == other.modifiers && item == other.item &&
           extent == other.extent && approxBytes == other.approxBytes &&
           coldEntries == other.coldEntries;
  }
};

/// One `target update` directive to insert.
struct UpdateItem {
  SymbolId symbol = kInvalidSymbol;
  UpdateDirection direction = UpdateDirection::From;
  UpdatePlacement placement = UpdatePlacement::Before;
  bool hoisted = false; ///< anchor is a loop, not the access statement
  std::string item;
  Extent extent;
  /// Estimated bytes one execution of this update moves.
  std::uint64_t approxBytes = 0;
  /// Statically provable executions per program run (region entries times
  /// the constant trip counts of region loops enclosing the insertion
  /// point; unknown-bound loops count once).
  std::uint64_t executions = 1;
  StmtAnchor anchor;

  [[nodiscard]] bool operator==(const UpdateItem &other) const {
    return symbol == other.symbol && direction == other.direction &&
           placement == other.placement && hoisted == other.hoisted &&
           item == other.item && extent == other.extent &&
           approxBytes == other.approxBytes &&
           executions == other.executions && anchor == other.anchor;
  }
};

/// firstprivate(var) appended to one kernel directive.
struct FirstprivateItem {
  SymbolId symbol = kInvalidSymbol;
  std::string var;
  unsigned kernelLine = 0;
  std::size_t kernelPragmaEndOffset = 0;

  [[nodiscard]] bool operator==(const FirstprivateItem &other) const {
    return symbol == other.symbol && var == other.var &&
           kernelLine == other.kernelLine &&
           kernelPragmaEndOffset == other.kernelPragmaEndOffset;
  }
};

/// The single target-data region planned for one function.
struct Region {
  std::string function;
  StmtAnchor start;
  StmtAnchor end;
  /// When the region is exactly one kernel, clauses are appended to its
  /// pragma (at this offset) instead of creating a new data directive.
  bool appendsToKernel = false;
  std::size_t soleKernelPragmaEndOffset = 0;
  /// Statically provable region entries per program run (function call
  /// count times constant trips of loops enclosing the region start). Each
  /// entry/exit pays the present-table 0->1/1->0 transition copies.
  std::uint64_t entryCount = 1;
  std::vector<MapItem> maps;
  std::vector<UpdateItem> updates;
  std::vector<FirstprivateItem> firstprivates;

  [[nodiscard]] unsigned beginLine() const { return start.line; }
  [[nodiscard]] unsigned endLine() const { return end.endLine; }

  [[nodiscard]] bool operator==(const Region &other) const {
    return function == other.function && start == other.start &&
           end == other.end && appendsToKernel == other.appendsToKernel &&
           soleKernelPragmaEndOffset == other.soleKernelPragmaEndOffset &&
           entryCount == other.entryCount && maps == other.maps &&
           updates == other.updates && firstprivates == other.firstprivates;
  }
};

/// A complete mapping plan for one translation unit, AST-free.
struct MappingIr {
  static constexpr unsigned kVersion = 1;

  std::string file;
  std::vector<Symbol> symbols;
  std::vector<Region> regions;

  [[nodiscard]] bool empty() const { return regions.empty(); }

  [[nodiscard]] const Symbol *symbol(SymbolId id) const {
    for (const Symbol &sym : symbols)
      if (sym.id == id)
        return &sym;
    return nullptr;
  }
  [[nodiscard]] const Symbol *findSymbol(const std::string &name) const {
    for (const Symbol &sym : symbols)
      if (sym.name == name)
        return &sym;
    return nullptr;
  }
  [[nodiscard]] const Region *regionFor(const std::string &function) const {
    for (const Region &region : regions)
      if (region.function == function)
        return &region;
    return nullptr;
  }
  [[nodiscard]] std::size_t totalUpdates() const {
    std::size_t count = 0;
    for (const Region &region : regions)
      count += region.updates.size();
    return count;
  }

  [[nodiscard]] json::Value toJson() const;
  /// Inverse of `toJson`. Returns nullopt (and sets `error`) on documents
  /// that are not a serialized MappingIr.
  [[nodiscard]] static std::optional<MappingIr>
  fromJson(const json::Value &value, std::string *error = nullptr);

  /// Stable 32-hex-char content fingerprint over the canonical (compact
  /// JSON) serialization: equal IRs hash equal across processes, so cache
  /// integrity checks and plan diffing can compare plans by fingerprint.
  [[nodiscard]] std::string fingerprint() const;

  [[nodiscard]] bool operator==(const MappingIr &other) const {
    return file == other.file && symbols == other.symbols &&
           regions == other.regions;
  }
  [[nodiscard]] bool operator!=(const MappingIr &other) const {
    return !(*this == other);
  }
};

/// Lifts an AST-level MappingPlan into the self-contained IR. `fileName` is
/// recorded in the IR header. Every AST pointer is replaced by a symbol-table
/// entry or a source-range anchor; the result shares no state with the plan.
[[nodiscard]] MappingIr liftPlan(const MappingPlan &plan,
                                 const std::string &fileName);

} // namespace ompdart::ir
