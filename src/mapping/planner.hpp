// The mapping planner: OMPDart's decision engine (paper §IV-D / §IV-E).
//
// For every function containing offload kernels it:
//   1. chooses the extent of the single target-data region (hoisted outside
//      any loops capturing the first/last kernel),
//   2. validates that mapped variables are declared before the region
//      (emitting the paper's "move this declaration" error otherwise),
//   3. runs a forward validity walk over the AST-CFG region tracking which
//      memory space holds each variable's current value. Every host<->device
//      RAW dependency is resolved by *candidate enumeration*: the planner
//      lists the valid constructs (region map(to/from/tofrom/alloc), a
//      hoisted `target update` per Algorithm 1, an update at the access,
//      `firstprivate` for read-only scalars) with estimated traffic
//      features, and the configured CostModel picks one. The default
//      PaperGreedyCostModel reproduces the paper's fixed rule exactly;
//      SimCostModel makes the choice cost-driven (mapping/cost.hpp).
//   4. infers array sections from bounds analysis / malloc extents.
#pragma once

#include "analysis/bounds.hpp"
#include "analysis/extent.hpp"
#include "analysis/interproc.hpp"
#include "analysis/liveness.hpp"
#include "analysis/summary.hpp"
#include "cfg/cfg.hpp"
#include "mapping/cost.hpp"
#include "mapping/plan.hpp"
#include "support/diagnostics.hpp"

#include <map>
#include <memory>
#include <set>
#include <unordered_map>

namespace ompdart {

struct PlannerOptions {
  /// Use firstprivate for read-only scalars (paper §IV-D); disabling this is
  /// the `firstprivate` ablation (removes the Firstprivate candidate).
  bool useFirstprivate = true;
  /// Hoist update directives per Algorithm 1; disabling places updates at
  /// the innermost access position (the paper's 14x motivating comparison;
  /// removes the UpdateHoisted candidate).
  bool hoistUpdates = true;
  /// Extend the data region outside loops capturing kernels; disabling maps
  /// per kernel (region == each kernel) for the region-extent ablation
  /// (removes the RegionOverLoops candidate).
  bool extendRegionOverLoops = true;
  /// Run the interprocedural fixed point; disabling treats every call
  /// pessimistically (interproc ablation).
  bool interprocedural = true;
  /// Scores enumerated candidates; null uses the built-in
  /// PaperGreedyCostModel (the paper's behavior, byte-for-byte).
  const CostModel *costModel = nullptr;
  /// Cross-TU facts from the Project link (whole-program execution counts,
  /// external call-site constants/extents). Null for single-TU runs — the
  /// planner then derives everything from the unit's own call sites.
  /// Non-owning; must outlive the planner.
  const summary::TuImports *imports = nullptr;
};

class MappingPlanner {
public:
  MappingPlanner(const TranslationUnit &unit,
                 const InterproceduralResult &interproc,
                 DiagnosticEngine &diags, PlannerOptions options = {});

  /// Plans regions for every defined function that launches kernels.
  [[nodiscard]] MappingPlan plan();

  /// Same, but reuses caller-provided AST-CFGs (the Session's cached `cfg()`
  /// artifact) instead of rebuilding them.
  [[nodiscard]] MappingPlan
  plan(const std::vector<std::unique_ptr<AstCfg>> &cfgs);

private:
  struct VarState {
    bool hostValid = true;
    bool devValid = false;
    bool hostWroteSinceEntry = false;
    const Stmt *lastHostWriteStmt = nullptr;
    const ArraySubscriptExpr *lastHostWriteSubscript = nullptr;
    const OmpDirectiveStmt *lastDeviceWriteKernel = nullptr;
  };
  struct VarFacts {
    bool needsTo = false;
    bool deviceRead = false;
    bool deviceWrite = false;
    bool referencedInKernel = false;
  };
  struct WalkContext {
    std::map<VarDecl *, VarState> state;
    /// Loops (outermost-first) currently enclosing the walk position,
    /// restricted to host-side loops inside the region.
    std::vector<const Stmt *> loops;
  };

  void planFunction(const FunctionDecl *fn, const AstCfg &cfg,
                    MappingPlan &outPlan);

  /// Warm-callee post-pass: marks map items `present` when every call site
  /// of the region's function provably executes inside an enclosing caller
  /// region that already maps the object (refcount 1->2 transitions move
  /// no bytes; the transfer predictor skips present items).
  void markPresentMaps(MappingPlan &plan) const;

  /// Region extent selection (step 1).
  bool chooseRegionExtent(const AstCfg &cfg, RegionPlan &region);

  /// Validity walk (step 3).
  void walkStmt(const Stmt *stmt, WalkContext &ctx, RegionPlan &region);
  void processLeafEvents(const Stmt *stmt, WalkContext &ctx,
                         RegionPlan &region);
  void handleDeviceRead(const AccessEvent &event, WalkContext &ctx,
                        RegionPlan &region);
  void handleDeviceWrite(const AccessEvent &event, WalkContext &ctx,
                         RegionPlan &region);
  void handleHostRead(const AccessEvent &event, WalkContext &ctx,
                      RegionPlan &region);
  void handleHostWrite(const AccessEvent &event, WalkContext &ctx,
                       RegionPlan &region);
  void mergeStates(std::map<VarDecl *, VarState> &into,
                   const std::map<VarDecl *, VarState> &branch);

  void addUpdate(VarDecl *var, UpdateDirection direction, const Stmt *anchor,
                 UpdatePlacement placement, bool hoisted, RegionPlan &region);

  /// The configured cost model (PaperGreedy fallback when options carry
  /// none).
  [[nodiscard]] const CostModel &costModel() const;

  /// Product of the estimated trip counts of `loops` (kUnknownTripCount
  /// per unanalyzable loop), saturating well below overflow. Feeds
  /// candidate *scoring* (assume repetition is expensive); the transfer
  /// predictor's provable execution counts come from the guarded-aware
  /// ancestor walks instead (updateExecutionsAt, entry counts).
  [[nodiscard]] std::uint64_t
  tripCountEstimate(const std::vector<const Stmt *> &loops) const;

  /// Interprocedural execution-count estimate per function: entry functions
  /// execute once; a callee executes caller-executions times the constant
  /// trips of loops enclosing each call site (paper-faithful present-table
  /// accounting needs this: every extra region entry pays the 0->1/1->0
  /// transition copies again).
  void
  estimateFunctionExecutions(const std::vector<std::unique_ptr<AstCfg>> &cfgs);

  /// Statically provable executions of an update inserted at `anchor` with
  /// `placement`: region entries times the constant trips of region loops
  /// enclosing the insertion point.
  [[nodiscard]] std::uint64_t
  updateExecutionsAt(const Stmt *anchor, UpdatePlacement placement) const;

  /// Parent statement per `stmtParents_` (null at the function body root).
  [[nodiscard]] const Stmt *stmtParent(const Stmt *stmt) const;
  /// Chain from the outermost statement down to `stmt` (inclusive).
  [[nodiscard]] std::vector<const Stmt *>
  parentChainOf(const Stmt *stmt) const;

  /// Loops enclosing `inner` that sit at or inside `outer` — the loop
  /// levels an update re-executes in when left at the access instead of
  /// hoisted to `outer`.
  [[nodiscard]] std::vector<const Stmt *>
  loopsBetween(const Stmt *outer, const Stmt *inner) const;

  /// To-direction Algorithm 1: position after the last host write, hoisted
  /// out of indexing loops but never past `consumerKernel` (null = region
  /// end). Returns null when there is no recorded host write.
  [[nodiscard]] const Stmt *
  hoistAfterHostWrite(const VarState &state,
                      const OmpDirectiveStmt *consumerKernel,
                      bool &hoisted) const;

  /// Section spelling, byte estimate and structured extent for a mapped
  /// variable.
  struct SectionInfo {
    std::string spelling;
    std::uint64_t bytes = 0;
    ir::Extent extent;
  };
  /// Memoized per variable for the current function (candidate enumeration
  /// queries it several times per event); the unknown-pointer-extent
  /// warning is replayed on every call, exactly as the uncached computation
  /// emitted it.
  [[nodiscard]] SectionInfo sectionFor(VarDecl *var) const;
  /// Uncached computation; sets `warned` when it emitted the
  /// unknown-pointer-extent warning (so cache hits can replay it).
  [[nodiscard]] SectionInfo computeSectionFor(VarDecl *var,
                                              bool &warned) const;

  /// Declared/malloc extent, falling back to inference from the loop bounds
  /// of device accesses when the allocation size is invisible. Delegates to
  /// the shared ExtentResolver (also used by the plan-safety checker).
  [[nodiscard]] ExtentInfo effectiveExtent(VarDecl *var) const;

  /// True for variables declared inside an offload kernel (device-private).
  [[nodiscard]] bool isKernelLocal(const VarDecl *var) const;

  /// Whether a loop statement (by source range) contains another statement.
  [[nodiscard]] static bool contains(const Stmt *outer, const Stmt *inner);

  /// Constant value of a symbolic pointer extent, resolved by folding the
  /// extent expression, or — when it names a parameter — by folding the
  /// agreeing argument at every call site. Delegates to the ExtentResolver.
  [[nodiscard]] std::optional<std::uint64_t>
  symbolicExtentElems(const ExtentInfo &extent) const;

  const TranslationUnit &unit_;
  const InterproceduralResult &interproc_;
  DiagnosticEngine &diags_;
  PlannerOptions options_;
  PaperGreedyCostModel defaultCostModel_;
  MallocExtents mallocExtents_;
  /// Shared mapped-extent resolution (declared after mallocExtents_: the
  /// resolver holds a reference to it).
  ExtentResolver extents_;

  /// Interprocedural execution-count estimates (estimateFunctionExecutions).
  std::map<const FunctionDecl *, std::uint64_t> fnExecutions_;

  // Per-function working state.
  const FunctionAccessInfo *accesses_ = nullptr;
  std::unique_ptr<LivenessAnalysis> liveness_;
  const AstCfg *cfg_ = nullptr;
  std::map<VarDecl *, VarFacts> facts_;
  std::set<std::tuple<VarDecl *, UpdateDirection, const Stmt *>> updateKeys_;
  /// sectionFor memo for the current function; `warned` records whether the
  /// original computation emitted the unknown-extent warning, so cache hits
  /// reproduce the diagnostic stream of the uncached planner.
  struct SectionMemo {
    SectionInfo info;
    bool warned = false;
  };
  mutable std::unordered_map<VarDecl *, SectionMemo> sectionMemo_;
  std::size_t regionBeginOffset_ = 0;
  std::size_t regionEndOffset_ = 0;
  /// Provable entries of the current region (planFunction).
  std::uint64_t regionEntryCount_ = 1;
  /// Child -> parent statement links of the current function, for walking
  /// the loop chain above an arbitrary update anchor.
  std::unordered_map<const Stmt *, const Stmt *> stmtParents_;
};

/// Convenience: full pipeline for a parsed unit. When `cfgs` is non-null the
/// planner reuses those AST-CFGs instead of rebuilding them.
[[nodiscard]] MappingPlan
planMappings(const TranslationUnit &unit,
             const InterproceduralResult &interproc, DiagnosticEngine &diags,
             PlannerOptions options = {},
             const std::vector<std::unique_ptr<AstCfg>> *cfgs = nullptr);

} // namespace ompdart
