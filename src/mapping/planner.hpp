// The mapping planner: OMPDart's decision engine (paper §IV-D / §IV-E).
//
// For every function containing offload kernels it:
//   1. chooses the extent of the single target-data region (hoisted outside
//      any loops capturing the first/last kernel),
//   2. validates that mapped variables are declared before the region
//      (emitting the paper's "move this declaration" error otherwise),
//   3. runs a forward validity walk over the AST-CFG region tracking which
//      memory space holds each variable's current value, resolving every
//      host<->device RAW dependency with the cheapest construct: region
//      map(to/from/tofrom/alloc), a hoisted `target update` (Algorithm 1),
//      or `firstprivate` for read-only scalars,
//   4. infers array sections from bounds analysis / malloc extents.
#pragma once

#include "analysis/bounds.hpp"
#include "analysis/interproc.hpp"
#include "analysis/liveness.hpp"
#include "cfg/cfg.hpp"
#include "mapping/plan.hpp"
#include "support/diagnostics.hpp"

#include <map>
#include <memory>
#include <set>

namespace ompdart {

struct PlannerOptions {
  /// Use firstprivate for read-only scalars (paper §IV-D); disabling this is
  /// the `firstprivate` ablation.
  bool useFirstprivate = true;
  /// Hoist update directives per Algorithm 1; disabling places updates at
  /// the innermost access position (the paper's 14x motivating comparison).
  bool hoistUpdates = true;
  /// Extend the data region outside loops capturing kernels; disabling maps
  /// per kernel (region == each kernel) for the region-extent ablation.
  bool extendRegionOverLoops = true;
  /// Run the interprocedural fixed point; disabling treats every call
  /// pessimistically (interproc ablation).
  bool interprocedural = true;
};

class MappingPlanner {
public:
  MappingPlanner(const TranslationUnit &unit,
                 const InterproceduralResult &interproc,
                 DiagnosticEngine &diags, PlannerOptions options = {});

  /// Plans regions for every defined function that launches kernels.
  [[nodiscard]] MappingPlan plan();

  /// Same, but reuses caller-provided AST-CFGs (the Session's cached `cfg()`
  /// artifact) instead of rebuilding them.
  [[nodiscard]] MappingPlan
  plan(const std::vector<std::unique_ptr<AstCfg>> &cfgs);

private:
  struct VarState {
    bool hostValid = true;
    bool devValid = false;
    bool hostWroteSinceEntry = false;
    const Stmt *lastHostWriteStmt = nullptr;
    const ArraySubscriptExpr *lastHostWriteSubscript = nullptr;
    const OmpDirectiveStmt *lastDeviceWriteKernel = nullptr;
  };
  struct VarFacts {
    bool needsTo = false;
    bool deviceRead = false;
    bool deviceWrite = false;
    bool referencedInKernel = false;
  };
  struct WalkContext {
    std::map<VarDecl *, VarState> state;
    /// Loops (outermost-first) currently enclosing the walk position,
    /// restricted to host-side loops inside the region.
    std::vector<const Stmt *> loops;
  };

  void planFunction(const FunctionDecl *fn, const AstCfg &cfg,
                    MappingPlan &outPlan);

  /// Region extent selection (step 1).
  bool chooseRegionExtent(const AstCfg &cfg, RegionPlan &region);

  /// Validity walk (step 3).
  void walkStmt(const Stmt *stmt, WalkContext &ctx, RegionPlan &region);
  void processLeafEvents(const Stmt *stmt, WalkContext &ctx,
                         RegionPlan &region);
  void handleDeviceRead(const AccessEvent &event, WalkContext &ctx,
                        RegionPlan &region);
  void handleDeviceWrite(const AccessEvent &event, WalkContext &ctx,
                         RegionPlan &region);
  void handleHostRead(const AccessEvent &event, WalkContext &ctx,
                      RegionPlan &region);
  void handleHostWrite(const AccessEvent &event, WalkContext &ctx);
  void mergeStates(std::map<VarDecl *, VarState> &into,
                   const std::map<VarDecl *, VarState> &branch);

  void addUpdate(VarDecl *var, UpdateDirection direction, const Stmt *anchor,
                 UpdatePlacement placement, bool hoisted, RegionPlan &region);

  /// To-direction Algorithm 1: position after the last host write, hoisted
  /// out of indexing loops but never past `consumerKernel` (null = region
  /// end). Returns null when there is no recorded host write.
  [[nodiscard]] const Stmt *
  hoistAfterHostWrite(const VarState &state,
                      const OmpDirectiveStmt *consumerKernel,
                      bool &hoisted) const;

  /// Section spelling + byte estimate for a mapped variable.
  [[nodiscard]] std::pair<std::string, std::uint64_t>
  sectionFor(VarDecl *var) const;

  /// Declared/malloc extent, falling back to inference from the loop bounds
  /// of device accesses when the allocation size is invisible.
  [[nodiscard]] ExtentInfo effectiveExtent(VarDecl *var) const;

  /// Extent of a pointer parameter derived from agreeing call-site
  /// arguments (interprocedural propagation).
  [[nodiscard]] ExtentInfo callSiteExtent(VarDecl *var) const;

  /// True for variables declared inside an offload kernel (device-private).
  [[nodiscard]] bool isKernelLocal(const VarDecl *var) const;

  /// Whether a loop statement (by source range) contains another statement.
  [[nodiscard]] static bool contains(const Stmt *outer, const Stmt *inner);

  const TranslationUnit &unit_;
  const InterproceduralResult &interproc_;
  DiagnosticEngine &diags_;
  PlannerOptions options_;
  MallocExtents mallocExtents_;

  // Per-function working state.
  const FunctionAccessInfo *accesses_ = nullptr;
  std::unique_ptr<LivenessAnalysis> liveness_;
  const AstCfg *cfg_ = nullptr;
  std::map<VarDecl *, VarFacts> facts_;
  std::set<std::tuple<VarDecl *, UpdateDirection, const Stmt *>> updateKeys_;
  std::size_t regionBeginOffset_ = 0;
  std::size_t regionEndOffset_ = 0;
};

/// Convenience: full pipeline for a parsed unit. When `cfgs` is non-null the
/// planner reuses those AST-CFGs instead of rebuilding them.
[[nodiscard]] MappingPlan
planMappings(const TranslationUnit &unit,
             const InterproceduralResult &interproc, DiagnosticEngine &diags,
             PlannerOptions options = {},
             const std::vector<std::unique_ptr<AstCfg>> *cfgs = nullptr);

} // namespace ompdart
