#include "mapping/ir.hpp"

#include "mapping/plan.hpp"
#include "support/hash.hpp"

#include <algorithm>
#include <map>

namespace ompdart::ir {

// ---------------------------------------------------------------------------
// Map-type lattice
// ---------------------------------------------------------------------------

namespace {

/// Movement bits of a base type on the to/from lattice; nullopt for the
/// unmapping types, which sit outside the movement order.
std::optional<unsigned> movementBits(MapType type) {
  switch (type) {
  case MapType::Alloc:
    return 0u;
  case MapType::To:
    return 1u;
  case MapType::From:
    return 2u;
  case MapType::ToFrom:
    return 3u;
  case MapType::Release:
  case MapType::Delete:
    return std::nullopt;
  }
  return std::nullopt;
}

MapType fromMovementBits(unsigned bits) {
  switch (bits & 3u) {
  case 0u:
    return MapType::Alloc;
  case 1u:
    return MapType::To;
  case 2u:
    return MapType::From;
  default:
    return MapType::ToFrom;
  }
}

// libomptarget tgt_map_type flag bits (omptarget.h).
constexpr std::uint64_t kTgtTo = 0x001;
constexpr std::uint64_t kTgtFrom = 0x002;
constexpr std::uint64_t kTgtAlways = 0x004;
constexpr std::uint64_t kTgtDelete = 0x008;
constexpr std::uint64_t kTgtClose = 0x400;
constexpr std::uint64_t kTgtPresent = 0x1000;

} // namespace

MapType joinMapType(MapType a, MapType b) {
  const auto bitsA = movementBits(a);
  const auto bitsB = movementBits(b);
  if (!bitsA)
    return b; // unmapping never strengthens movement
  if (!bitsB)
    return a;
  return fromMovementBits(*bitsA | *bitsB);
}

bool mapTypeLE(MapType a, MapType b) {
  const auto bitsA = movementBits(a);
  const auto bitsB = movementBits(b);
  if (!bitsA || !bitsB)
    return a == b; // Release/Delete comparable only to themselves
  return (*bitsA & *bitsB) == *bitsA;
}

std::uint64_t tgtMapTypeFlags(MapType type, MapModifiers modifiers) {
  std::uint64_t flags = 0;
  switch (type) {
  case MapType::Alloc:
  case MapType::Release:
    break; // allocation/deallocation only: no movement bits
  case MapType::To:
    flags |= kTgtTo;
    break;
  case MapType::From:
    flags |= kTgtFrom;
    break;
  case MapType::ToFrom:
    flags |= kTgtTo | kTgtFrom;
    break;
  case MapType::Delete:
    flags |= kTgtDelete;
    break;
  }
  if (modifiers.always)
    flags |= kTgtAlways;
  if (modifiers.present)
    flags |= kTgtPresent;
  if (modifiers.close)
    flags |= kTgtClose;
  return flags;
}

const char *mapTypeName(MapType type) {
  switch (type) {
  case MapType::Alloc:
    return "alloc";
  case MapType::To:
    return "to";
  case MapType::From:
    return "from";
  case MapType::ToFrom:
    return "tofrom";
  case MapType::Release:
    return "release";
  case MapType::Delete:
    return "delete";
  }
  return "unknown";
}

std::optional<MapType> mapTypeFromName(const std::string &name) {
  for (const MapType type :
       {MapType::Alloc, MapType::To, MapType::From, MapType::ToFrom,
        MapType::Release, MapType::Delete})
    if (name == mapTypeName(type))
      return type;
  return std::nullopt;
}

std::string mapTypeSpellingWithModifiers(MapType type,
                                         MapModifiers modifiers) {
  std::string out;
  if (modifiers.always)
    out += "always, ";
  if (modifiers.close)
    out += "close, ";
  if (modifiers.present)
    out += "present, ";
  out += mapTypeName(type);
  return out;
}

const char *updateDirectionName(UpdateDirection direction) {
  return direction == UpdateDirection::To ? "to" : "from";
}

std::optional<UpdateDirection>
updateDirectionFromName(const std::string &name) {
  if (name == "to")
    return UpdateDirection::To;
  if (name == "from")
    return UpdateDirection::From;
  return std::nullopt;
}

const char *updatePlacementName(UpdatePlacement placement) {
  switch (placement) {
  case UpdatePlacement::Before:
    return "before";
  case UpdatePlacement::After:
    return "after";
  case UpdatePlacement::BodyBegin:
    return "body-begin";
  case UpdatePlacement::BodyEnd:
    return "body-end";
  }
  return "unknown";
}

std::optional<UpdatePlacement>
updatePlacementFromName(const std::string &name) {
  for (const UpdatePlacement placement :
       {UpdatePlacement::Before, UpdatePlacement::After,
        UpdatePlacement::BodyBegin, UpdatePlacement::BodyEnd})
    if (name == updatePlacementName(placement))
      return placement;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

namespace {

const char *extentKindName(Extent::Kind kind) {
  switch (kind) {
  case Extent::Kind::Whole:
    return "whole";
  case Extent::Kind::Const:
    return "const";
  case Extent::Kind::Expr:
    return "expr";
  }
  return "unknown";
}

std::optional<Extent::Kind> extentKindFromName(const std::string &name) {
  if (name == "whole")
    return Extent::Kind::Whole;
  if (name == "const")
    return Extent::Kind::Const;
  if (name == "expr")
    return Extent::Kind::Expr;
  return std::nullopt;
}

json::Value extentToJson(const Extent &extent) {
  json::Value out = json::Value::object();
  out.set("kind", extentKindName(extent.kind));
  if (extent.kind == Extent::Kind::Const)
    out.set("elems", extent.constElems);
  if (extent.kind == Extent::Kind::Expr)
    out.set("expr", extent.expr);
  return out;
}

bool extentFromJson(const json::Value &value, Extent &extent,
                    std::string *error) {
  const std::optional<Extent::Kind> kind =
      extentKindFromName(value.stringOr("kind", "whole"));
  if (!kind)
    return json::setFirstError(error, "extent names an unknown kind");
  extent.kind = *kind;
  extent.constElems = value.uintOr("elems");
  extent.expr = value.stringOr("expr");
  return true;
}

json::Value anchorToJson(const StmtAnchor &anchor) {
  json::Value out = json::Value::object();
  out.set("beginOffset", static_cast<std::uint64_t>(anchor.beginOffset));
  out.set("endOffset", static_cast<std::uint64_t>(anchor.endOffset));
  out.set("line", anchor.line);
  out.set("endLine", anchor.endLine);
  if (anchor.hasBody) {
    out.set("bodyIsCompound", anchor.bodyIsCompound);
    out.set("bodyBeginOffset",
            static_cast<std::uint64_t>(anchor.bodyBeginOffset));
    out.set("bodyEndOffset",
            static_cast<std::uint64_t>(anchor.bodyEndOffset));
  }
  return out;
}

StmtAnchor anchorFromJson(const json::Value &value) {
  StmtAnchor anchor;
  anchor.beginOffset = static_cast<std::size_t>(value.uintOr("beginOffset"));
  anchor.endOffset = static_cast<std::size_t>(value.uintOr("endOffset"));
  anchor.line = static_cast<unsigned>(value.uintOr("line"));
  anchor.endLine = static_cast<unsigned>(value.uintOr("endLine"));
  anchor.hasBody = value.find("bodyBeginOffset") != nullptr;
  if (anchor.hasBody) {
    anchor.bodyIsCompound = value.boolOr("bodyIsCompound");
    anchor.bodyBeginOffset =
        static_cast<std::size_t>(value.uintOr("bodyBeginOffset"));
    anchor.bodyEndOffset =
        static_cast<std::size_t>(value.uintOr("bodyEndOffset"));
  }
  return anchor;
}

json::Value modifiersToJson(const MapModifiers &modifiers) {
  json::Value out = json::Value::array();
  if (modifiers.always)
    out.push("always");
  if (modifiers.close)
    out.push("close");
  if (modifiers.present)
    out.push("present");
  return out;
}

bool modifiersFromJson(const json::Value &value, MapModifiers &modifiers,
                       std::string *error) {
  for (const json::Value &entry : value.items()) {
    const std::string &name = entry.asString();
    if (name == "always")
      modifiers.always = true;
    else if (name == "close")
      modifiers.close = true;
    else if (name == "present")
      modifiers.present = true;
    else
      return json::setFirstError(error, "map item names an unknown modifier");
  }
  return true;
}

} // namespace

json::Value MappingIr::toJson() const {
  json::Value out = json::Value::object();
  out.set("version", kVersion);
  out.set("file", file);

  json::Value symbolsJson = json::Value::array();
  for (const Symbol &sym : symbols) {
    json::Value entry = json::Value::object();
    entry.set("id", sym.id);
    entry.set("name", sym.name);
    entry.set("declOffset", static_cast<std::uint64_t>(sym.declOffset));
    entry.set("declLine", sym.declLine);
    entry.set("global", sym.isGlobal);
    entry.set("param", sym.isParam);
    entry.set("elemBytes", sym.elemBytes);
    symbolsJson.push(std::move(entry));
  }
  out.set("symbols", std::move(symbolsJson));

  json::Value regionsJson = json::Value::array();
  for (const Region &region : regions) {
    json::Value regionJson = json::Value::object();
    regionJson.set("function", region.function);
    regionJson.set("start", anchorToJson(region.start));
    regionJson.set("end", anchorToJson(region.end));
    regionJson.set("appendsToKernel", region.appendsToKernel);
    if (region.appendsToKernel)
      regionJson.set("soleKernelPragmaEndOffset",
                     static_cast<std::uint64_t>(
                         region.soleKernelPragmaEndOffset));
    regionJson.set("entryCount", region.entryCount);

    json::Value mapsJson = json::Value::array();
    for (const MapItem &map : region.maps) {
      json::Value entry = json::Value::object();
      entry.set("symbol", map.symbol);
      entry.set("type", mapTypeName(map.type));
      if (map.modifiers.any())
        entry.set("modifiers", modifiersToJson(map.modifiers));
      entry.set("item", map.item);
      entry.set("extent", extentToJson(map.extent));
      entry.set("approxBytes", map.approxBytes);
      entry.set("coldEntries", map.coldEntries);
      mapsJson.push(std::move(entry));
    }
    regionJson.set("maps", std::move(mapsJson));

    json::Value updatesJson = json::Value::array();
    for (const UpdateItem &update : region.updates) {
      json::Value entry = json::Value::object();
      entry.set("symbol", update.symbol);
      entry.set("direction", updateDirectionName(update.direction));
      entry.set("placement", updatePlacementName(update.placement));
      entry.set("hoisted", update.hoisted);
      entry.set("item", update.item);
      entry.set("extent", extentToJson(update.extent));
      entry.set("approxBytes", update.approxBytes);
      entry.set("executions", update.executions);
      entry.set("anchor", anchorToJson(update.anchor));
      updatesJson.push(std::move(entry));
    }
    regionJson.set("updates", std::move(updatesJson));

    json::Value firstprivatesJson = json::Value::array();
    for (const FirstprivateItem &fp : region.firstprivates) {
      json::Value entry = json::Value::object();
      entry.set("symbol", fp.symbol);
      entry.set("var", fp.var);
      entry.set("kernelLine", fp.kernelLine);
      entry.set("kernelPragmaEndOffset",
                static_cast<std::uint64_t>(fp.kernelPragmaEndOffset));
      firstprivatesJson.push(std::move(entry));
    }
    regionJson.set("firstprivates", std::move(firstprivatesJson));

    regionsJson.push(std::move(regionJson));
  }
  out.set("regions", std::move(regionsJson));
  return out;
}

std::optional<MappingIr> MappingIr::fromJson(const json::Value &value,
                                             std::string *error) {
  if (!value.isObject()) {
    json::setFirstError(error, "mapping IR document must be a JSON object");
    return std::nullopt;
  }
  MappingIr out;
  out.file = value.stringOr("file");

  if (const json::Value *symbolsJson = value.find("symbols")) {
    for (const json::Value &entry : symbolsJson->items()) {
      Symbol sym;
      sym.id = static_cast<SymbolId>(entry.uintOr("id", kInvalidSymbol));
      sym.name = entry.stringOr("name");
      sym.declOffset = static_cast<std::size_t>(entry.uintOr("declOffset"));
      sym.declLine = static_cast<unsigned>(entry.uintOr("declLine"));
      sym.isGlobal = entry.boolOr("global");
      sym.isParam = entry.boolOr("param");
      sym.elemBytes = entry.uintOr("elemBytes");
      out.symbols.push_back(std::move(sym));
    }
  }

  if (const json::Value *regionsJson = value.find("regions")) {
    for (const json::Value &regionJson : regionsJson->items()) {
      Region region;
      region.function = regionJson.stringOr("function");
      if (const json::Value *start = regionJson.find("start"))
        region.start = anchorFromJson(*start);
      if (const json::Value *end = regionJson.find("end"))
        region.end = anchorFromJson(*end);
      region.appendsToKernel = regionJson.boolOr("appendsToKernel");
      region.soleKernelPragmaEndOffset = static_cast<std::size_t>(
          regionJson.uintOr("soleKernelPragmaEndOffset"));
      region.entryCount = regionJson.uintOr("entryCount", 1);

      if (const json::Value *mapsJson = regionJson.find("maps")) {
        for (const json::Value &entry : mapsJson->items()) {
          MapItem map;
          map.symbol =
              static_cast<SymbolId>(entry.uintOr("symbol", kInvalidSymbol));
          const std::optional<MapType> type =
              mapTypeFromName(entry.stringOr("type"));
          if (!type) {
            json::setFirstError(error, "map item names an unknown map type");
            return std::nullopt;
          }
          map.type = *type;
          if (const json::Value *modifiers = entry.find("modifiers")) {
            if (!modifiersFromJson(*modifiers, map.modifiers, error))
              return std::nullopt;
          }
          map.item = entry.stringOr("item");
          if (const json::Value *extent = entry.find("extent")) {
            if (!extentFromJson(*extent, map.extent, error))
              return std::nullopt;
          }
          map.approxBytes = entry.uintOr("approxBytes");
          // Older documents predate per-item accounting: every entry cold.
          map.coldEntries = entry.uintOr("coldEntries", region.entryCount);
          region.maps.push_back(std::move(map));
        }
      }

      if (const json::Value *updatesJson = regionJson.find("updates")) {
        for (const json::Value &entry : updatesJson->items()) {
          UpdateItem update;
          update.symbol =
              static_cast<SymbolId>(entry.uintOr("symbol", kInvalidSymbol));
          const std::optional<UpdateDirection> direction =
              updateDirectionFromName(entry.stringOr("direction"));
          if (!direction) {
            json::setFirstError(error, "update item names an unknown direction");
            return std::nullopt;
          }
          update.direction = *direction;
          const std::optional<UpdatePlacement> placement =
              updatePlacementFromName(entry.stringOr("placement"));
          if (!placement) {
            json::setFirstError(error, "update item names an unknown placement");
            return std::nullopt;
          }
          update.placement = *placement;
          update.hoisted = entry.boolOr("hoisted");
          update.item = entry.stringOr("item");
          if (const json::Value *extent = entry.find("extent")) {
            if (!extentFromJson(*extent, update.extent, error))
              return std::nullopt;
          }
          update.approxBytes = entry.uintOr("approxBytes");
          update.executions = entry.uintOr("executions", 1);
          if (const json::Value *anchor = entry.find("anchor"))
            update.anchor = anchorFromJson(*anchor);
          region.updates.push_back(std::move(update));
        }
      }

      if (const json::Value *fpJson = regionJson.find("firstprivates")) {
        for (const json::Value &entry : fpJson->items()) {
          FirstprivateItem fp;
          fp.symbol =
              static_cast<SymbolId>(entry.uintOr("symbol", kInvalidSymbol));
          fp.var = entry.stringOr("var");
          fp.kernelLine = static_cast<unsigned>(entry.uintOr("kernelLine"));
          fp.kernelPragmaEndOffset = static_cast<std::size_t>(
              entry.uintOr("kernelPragmaEndOffset"));
          region.firstprivates.push_back(std::move(fp));
        }
      }

      out.regions.push_back(std::move(region));
    }
  }
  return out;
}

std::string MappingIr::fingerprint() const {
  // The JSON writer preserves member insertion order and toJson always
  // emits in one order, so the compact dump is a canonical serialization.
  return hash::fingerprint(toJson().dump(/*pretty=*/false));
}

// ---------------------------------------------------------------------------
// Lifting
// ---------------------------------------------------------------------------

namespace {

MapType liftMapType(OmpMapType type) {
  switch (type) {
  case OmpMapType::To:
    return MapType::To;
  case OmpMapType::From:
    return MapType::From;
  case OmpMapType::ToFrom:
    return MapType::ToFrom;
  case OmpMapType::Alloc:
    return MapType::Alloc;
  case OmpMapType::Release:
    return MapType::Release;
  case OmpMapType::Delete:
    return MapType::Delete;
  }
  return MapType::ToFrom;
}

UpdateDirection liftDirection(ompdart::UpdateDirection direction) {
  return direction == ompdart::UpdateDirection::To ? UpdateDirection::To
                                                   : UpdateDirection::From;
}

UpdatePlacement liftPlacement(ompdart::UpdatePlacement placement) {
  switch (placement) {
  case ompdart::UpdatePlacement::Before:
    return UpdatePlacement::Before;
  case ompdart::UpdatePlacement::After:
    return UpdatePlacement::After;
  case ompdart::UpdatePlacement::BodyBegin:
    return UpdatePlacement::BodyBegin;
  case ompdart::UpdatePlacement::BodyEnd:
    return UpdatePlacement::BodyEnd;
  }
  return UpdatePlacement::Before;
}

StmtAnchor anchorFor(const Stmt *stmt) {
  StmtAnchor anchor;
  if (stmt == nullptr)
    return anchor;
  anchor.beginOffset = stmt->range().begin.offset;
  anchor.endOffset = stmt->range().end.offset;
  anchor.line = stmt->range().begin.line;
  anchor.endLine = stmt->range().end.line;
  const Stmt *body = nullptr;
  switch (stmt->kind()) {
  case StmtKind::For:
    body = static_cast<const ForStmt *>(stmt)->body();
    break;
  case StmtKind::While:
    body = static_cast<const WhileStmt *>(stmt)->body();
    break;
  case StmtKind::Do:
    body = static_cast<const DoStmt *>(stmt)->body();
    break;
  default:
    break;
  }
  if (body != nullptr) {
    anchor.hasBody = true;
    anchor.bodyIsCompound = body->kind() == StmtKind::Compound;
    anchor.bodyBeginOffset = body->range().begin.offset;
    anchor.bodyEndOffset = body->range().end.offset;
  }
  return anchor;
}

/// Interns plan variables into the IR symbol table.
class SymbolTable {
public:
  explicit SymbolTable(MappingIr &ir) : ir_(ir) {}

  SymbolId intern(const VarDecl *var) {
    if (var == nullptr)
      return kInvalidSymbol;
    auto it = ids_.find(var);
    if (it != ids_.end())
      return it->second;
    Symbol sym;
    sym.id = static_cast<SymbolId>(ir_.symbols.size());
    sym.name = var->name();
    const SourceRange range =
        var->declStmtRange().isValid() ? var->declStmtRange() : var->range();
    sym.declOffset = range.begin.offset;
    sym.declLine = range.begin.line;
    sym.isGlobal = var->isGlobal();
    sym.isParam = var->isParam();
    const Type *base = scalarBaseType(var->type());
    sym.elemBytes = base != nullptr ? base->sizeInBytes()
                                    : var->type()->sizeInBytes();
    ids_[var] = sym.id;
    ir_.symbols.push_back(std::move(sym));
    return ids_[var];
  }

private:
  MappingIr &ir_;
  std::map<const VarDecl *, SymbolId> ids_;
};

std::string itemSpelling(const VarDecl *var, const std::string &section) {
  if (!section.empty())
    return section;
  return var != nullptr ? var->name() : std::string();
}

} // namespace

MappingIr liftPlan(const MappingPlan &plan, const std::string &fileName) {
  MappingIr ir;
  ir.file = fileName;
  SymbolTable symbols(ir);

  for (const RegionPlan &region : plan.regions) {
    Region out;
    out.function =
        region.function != nullptr ? region.function->name() : std::string();
    out.start = anchorFor(region.startStmt);
    out.end = anchorFor(region.endStmt);
    out.appendsToKernel = region.appendsToKernel();
    if (region.soleKernel != nullptr)
      out.soleKernelPragmaEndOffset =
          region.soleKernel->pragmaRange().end.offset;
    out.entryCount = region.entryCount;

    for (const MapSpec &spec : region.maps) {
      MapItem item;
      item.symbol = symbols.intern(spec.var);
      item.type = liftMapType(spec.mapType);
      item.modifiers = spec.modifiers;
      item.item = itemSpelling(spec.var, spec.section);
      item.extent = spec.extent;
      item.approxBytes = spec.approxBytes;
      item.coldEntries = spec.coldEntries;
      out.maps.push_back(std::move(item));
    }

    for (const UpdateInsertion &update : region.updates) {
      UpdateItem item;
      item.symbol = symbols.intern(update.var);
      item.direction = liftDirection(update.direction);
      item.placement = liftPlacement(update.placement);
      item.hoisted = update.hoisted;
      item.item = itemSpelling(update.var, update.section);
      item.extent = update.extent;
      item.approxBytes = update.approxBytes;
      item.executions = update.executions;
      item.anchor = anchorFor(update.anchor);
      out.updates.push_back(std::move(item));
    }

    for (const FirstprivateInsertion &fp : region.firstprivates) {
      FirstprivateItem item;
      item.symbol = symbols.intern(fp.var);
      item.var = fp.var != nullptr ? fp.var->name() : std::string();
      if (fp.kernel != nullptr) {
        item.kernelLine = fp.kernel->range().begin.line;
        item.kernelPragmaEndOffset = fp.kernel->pragmaRange().end.offset;
      }
      out.firstprivates.push_back(std::move(item));
    }

    ir.regions.push_back(std::move(out));
  }
  return ir;
}

} // namespace ompdart::ir
