#include "mapping/planner.hpp"

#include "analysis/execution.hpp"
#include "frontend/ast_printer.hpp"
#include "frontend/const_fold.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

namespace ompdart {

namespace {

bool statesEqual(const std::map<VarDecl *, bool> &a,
                 const std::map<VarDecl *, bool> &b) {
  return a == b;
}

} // namespace

MappingPlanner::MappingPlanner(const TranslationUnit &unit,
                               const InterproceduralResult &interproc,
                               DiagnosticEngine &diags,
                               PlannerOptions options)
    : unit_(unit), interproc_(interproc), diags_(diags), options_(options),
      mallocExtents_(unit),
      extents_(unit, interproc, mallocExtents_, options.imports, &diags) {}

MappingPlan MappingPlanner::plan() {
  return plan(buildAllCfgs(unit_));
}

MappingPlan
MappingPlanner::plan(const std::vector<std::unique_ptr<AstCfg>> &cfgs) {
  MappingPlan result;
  estimateFunctionExecutions(cfgs);
  for (const auto &cfg : cfgs) {
    if (cfg->kernels().empty())
      continue;
    planFunction(cfg->function(), *cfg, result);
  }
  markPresentMaps(result);
  return result;
}

void MappingPlanner::markPresentMaps(MappingPlan &plan) const {
  // Warm-callee post-pass: a region entry reached through a call site that
  // sits inside an enclosing caller region already mapping the object is
  // warm — its map is a pure reference-count transition (1->2 on entry,
  // 2->1 on exit) that moves no bytes. Per map item, subtract the provable
  // executions of every warm call site from `coldEntries` (the transfer
  // predictor charges transition copies per COLD entry only); when every
  // site is warm, additionally mark the item `present` so the emitted
  // clause documents the invariant. The oracle's predicted==simulated
  // reconciliation found both halves: a hotspot-style staged kernel called
  // from inside main's region was charged cold per call, and mixed
  // inside/outside call sites need the per-site split.
  //
  // The proof needs every call site, so it only applies when this TU is
  // the whole program (it defines main and no cross-TU imports exist).
  if (options_.imports != nullptr)
    return;
  const FunctionDecl *mainFn = unit_.findFunction("main");
  if (mainFn == nullptr || mainFn->body() == nullptr)
    return;

  // Per-caller parent maps, built lazily (site execution estimates walk
  // the caller's loop chain — the same formula the weighted call graph
  // fed to estimateExecutions, one level unrolled).
  std::unordered_map<const FunctionDecl *,
                     std::unordered_map<const Stmt *, const Stmt *>>
      parentsByCaller;
  auto callerParents = [&](const FunctionDecl *caller)
      -> const std::unordered_map<const Stmt *, const Stmt *> & {
    auto it = parentsByCaller.find(caller);
    if (it == parentsByCaller.end()) {
      ParentMap parents(caller);
      it = parentsByCaller.emplace(caller, parents.takeLinks()).first;
    }
    return it->second;
  };

  for (RegionPlan &region : plan.regions) {
    const FunctionDecl *fn = region.function;
    if (fn == nullptr || fn == mainFn)
      continue;

    // The per-site split reconstructs entryCount = fnExec * startTrips; a
    // guarded region start collapses entries to the floor of one, where
    // per-site attribution is ambiguous — stay conservative (all cold).
    const ProvableMultiplier startMult =
        provableMultiplierOf(callerParents(fn), region.startStmt);
    if (startMult.guarded)
      continue;

    // Every host-side call site of fn, paired with its caller.
    struct Site {
      const FunctionDecl *caller = nullptr;
      const CallSite *site = nullptr;
      std::uint64_t executions = 0; ///< provable executions of the call
    };
    std::vector<Site> sites;
    bool allSitesVisible = true;
    for (const FunctionDecl *caller : unit_.functions) {
      const FunctionAccessInfo *info = interproc_.accessesFor(caller);
      if (info == nullptr)
        continue;
      for (const CallSite &site : info->callSites) {
        if (site.call == nullptr || site.call->callee() != fn)
          continue;
        if (site.onDevice || site.stmt == nullptr) {
          allSitesVisible = false; // in-kernel calls: no region proof
          continue;
        }
        const ProvableMultiplier mult =
            provableMultiplierOf(callerParents(caller), site.stmt);
        auto execIt = fnExecutions_.find(caller);
        const std::uint64_t callerExec =
            execIt != fnExecutions_.end()
                ? std::max<std::uint64_t>(1, execIt->second)
                : 1;
        Site entry;
        entry.caller = caller;
        entry.site = &site;
        entry.executions =
            mult.guarded ? 1 : saturatingMul(callerExec, mult.trips);
        sites.push_back(entry);
      }
    }
    if (!allSitesVisible || sites.empty())
      continue;

    for (MapSpec &spec : region.maps) {
      if (spec.mapType == OmpMapType::Alloc)
        continue; // nothing to suppress
      std::uint64_t warmEntries = 0;
      bool warmEverywhere = true;
      for (const Site &entry : sites) {
        bool warm = false;
        const RegionPlan *callerRegion = plan.regionFor(entry.caller);
        if (callerRegion != nullptr && !callerRegion->appendsToKernel() &&
            callerRegion->startStmt != nullptr &&
            callerRegion->endStmt != nullptr) {
          const std::size_t callOffset =
              entry.site->stmt->range().begin.offset;
          const bool inRegion =
              callOffset >= callerRegion->startStmt->range().begin.offset &&
              callOffset < callerRegion->endStmt->range().end.offset;
          if (inRegion) {
            // Resolve the mapped variable to the caller-side object at
            // this site: params through the argument expression, globals
            // directly.
            VarDecl *callerObject = spec.var;
            if (spec.var != nullptr && spec.var->isParam()) {
              const auto &params = fn->params();
              std::size_t index = params.size();
              for (std::size_t i = 0; i < params.size(); ++i)
                if (params[i] == spec.var)
                  index = i;
              callerObject =
                  index < entry.site->call->args().size()
                      ? argumentObject(entry.site->call->args()[index])
                      : nullptr;
            }
            if (callerObject != nullptr) {
              for (const MapSpec &callerSpec : callerRegion->maps)
                if (callerSpec.var == callerObject &&
                    callerSpec.extent.kind == ir::Extent::Kind::Whole)
                  warm = true;
            }
          }
        }
        if (warm)
          warmEntries += saturatingMul(entry.executions, startMult.trips);
        else
          warmEverywhere = false;
      }
      spec.coldEntries = warmEntries >= spec.coldEntries
                             ? 0
                             : spec.coldEntries - warmEntries;
      if (warmEverywhere) {
        spec.coldEntries = 0;
        spec.modifiers.present = true;
      }
    }
  }
}

void MappingPlanner::estimateFunctionExecutions(
    const std::vector<std::unique_ptr<AstCfg>> &cfgs) {
  (void)cfgs; // ancestor chains come from per-function ParentMaps
  fnExecutions_.clear();

  // Project mode: the link already ran the same estimator over the
  // whole-program call graph — cross-TU call sites included — so the
  // per-TU graph below would only rediscover a subset of its edges.
  if (options_.imports != nullptr && !options_.imports->executions.empty()) {
    for (const FunctionDecl *fn : unit_.functions) {
      auto it = options_.imports->executions.find(fn->name());
      fnExecutions_[fn] =
          it != options_.imports->executions.end() ? it->second : 1;
    }
    return;
  }

  // Single-TU mode: caller edges weighted by the provable trips of the
  // unguarded loops enclosing each host call site, fed to the shared
  // estimator (analysis/execution) the Project link also uses.
  WeightedCallGraph graph;
  for (const FunctionDecl *fn : unit_.functions)
    graph.addFunction(fn->name());
  for (const FunctionDecl *caller : unit_.functions) {
    const FunctionAccessInfo *info = interproc_.accessesFor(caller);
    if (info == nullptr)
      continue;
    std::unordered_map<const Stmt *, const Stmt *> callerParents;
    {
      ParentMap parents(caller);
      callerParents = parents.takeLinks();
    }
    for (const CallSite &site : info->callSites) {
      const FunctionDecl *callee = site.call->callee();
      if (callee == nullptr)
        continue;
      const ProvableMultiplier multiplier =
          provableMultiplierOf(callerParents, site.stmt);
      graph.addCall(caller->name(), callee->name(), multiplier.trips,
                    multiplier.guarded, site.onDevice);
    }
  }
  const std::map<std::string, std::uint64_t> executions =
      estimateExecutions(graph);
  for (const FunctionDecl *fn : unit_.functions) {
    auto it = executions.find(fn->name());
    fnExecutions_[fn] = it != executions.end() ? it->second : 0;
  }
}

bool MappingPlanner::contains(const Stmt *outer, const Stmt *inner) {
  return outer != nullptr && inner != nullptr &&
         outer->range().contains(inner->range());
}

bool MappingPlanner::chooseRegionExtent(const AstCfg &cfg,
                                        RegionPlan &region) {
  const auto &kernels = cfg.kernels();
  const OmpDirectiveStmt *firstKernel = kernels.front();
  const OmpDirectiveStmt *lastKernel = kernels.back();

  // Region extent is itself a candidate decision: hoist the region outside
  // the loops capturing the kernels (one map set per region execution) or
  // keep it at the kernel statements (maps re-enter on every iteration).
  // The ablation switch removes the RegionOverLoops candidate.
  bool extendOverLoops = false;
  if (options_.extendRegionOverLoops) {
    std::vector<Candidate> set;
    Candidate overLoops;
    overLoops.kind = CandidateKind::RegionOverLoops;
    overLoops.occurrences = 1;
    overLoops.transfersPerOccurrence =
        static_cast<unsigned>(kernels.size());
    overLoops.paperRank = 0;
    set.push_back(overLoops);
    Candidate perKernel;
    perKernel.kind = CandidateKind::RegionPerKernel;
    const auto *firstLoops = cfg.enclosingLoops(firstKernel);
    perKernel.occurrences = tripCountEstimate(
        firstLoops != nullptr ? *firstLoops
                              : std::vector<const Stmt *>{});
    perKernel.transfersPerOccurrence =
        static_cast<unsigned>(kernels.size());
    perKernel.paperRank = 1;
    set.push_back(perKernel);
    extendOverLoops =
        set[costModel().choose(set)].kind == CandidateKind::RegionOverLoops;
  }

  auto outermostLoopOf = [&](const OmpDirectiveStmt *kernel) -> const Stmt * {
    if (!extendOverLoops)
      return kernel;
    const auto *loops = cfg.enclosingLoops(kernel);
    if (loops != nullptr && !loops->empty())
      return loops->front();
    return kernel;
  };

  const Stmt *startAnchor = outermostLoopOf(firstKernel);
  const Stmt *endAnchor = outermostLoopOf(lastKernel);

  // Lift anchors to children of their lowest common compound so the region
  // is a well-formed statement sequence (parent links were collected by
  // planFunction before this ran).
  const auto startChain = parentChainOf(startAnchor);
  const auto endChain = parentChainOf(endAnchor);
  std::size_t common = 0;
  while (common < startChain.size() && common < endChain.size() &&
         startChain[common] == endChain[common])
    ++common;
  if (common == 0)
    return false;
  const Stmt *lca = startChain[common - 1];
  // Walk up until the common ancestor is a compound statement.
  while (lca != nullptr && lca->kind() != StmtKind::Compound)
    lca = stmtParent(lca);
  if (lca == nullptr)
    return false;
  auto childWithin = [&](const std::vector<const Stmt *> &chain)
      -> const Stmt * {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i)
      if (chain[i] == lca)
        return chain[i + 1];
    return chain.back();
  };
  region.startStmt = childWithin(startChain);
  region.endStmt = childWithin(endChain);
  if (region.startStmt->range().begin.offset >
      region.endStmt->range().begin.offset)
    std::swap(region.startStmt, region.endStmt);

  // Single-kernel special case: append clauses to the kernel's pragma.
  if (region.startStmt == region.endStmt && kernels.size() == 1 &&
      region.startStmt == firstKernel)
    region.soleKernel = firstKernel;
  return true;
}

void MappingPlanner::planFunction(const FunctionDecl *fn, const AstCfg &cfg,
                                  MappingPlan &outPlan) {
  accesses_ = interproc_.accessesFor(fn);
  if (accesses_ == nullptr)
    return;
  cfg_ = &cfg;
  extents_.setFunctionContext(accesses_, cfg_);
  facts_.clear();
  updateKeys_.clear();
  sectionMemo_.clear();
  liveness_ = std::make_unique<LivenessAnalysis>(cfg, *accesses_);

  // Child->parent links for this function: region-extent selection walks
  // ancestor chains, and update-execution estimates walk the loop chain
  // above arbitrary anchors (including loops the CFG loop stacks do not
  // key).
  {
    ParentMap parents(fn);
    stmtParents_ = parents.takeLinks();
  }

  RegionPlan region;
  region.function = fn;
  if (!chooseRegionExtent(cfg, region))
    return;
  regionBeginOffset_ = region.startStmt->range().begin.offset;
  regionEndOffset_ = region.endStmt->range().end.offset;

  // Provable region entries: every entry/exit replays the present-table
  // 0->1/1->0 transition copies, so the function's interprocedural call
  // count (hotspot: advance() runs once per time step and buffer swap)
  // multiplies all map traffic. Loops around the region start inside this
  // function (per-kernel regions) multiply on top.
  {
    auto it = fnExecutions_.find(fn);
    const std::uint64_t fnExec =
        it != fnExecutions_.end() ? std::max<std::uint64_t>(1, it->second)
                                  : 1;
    const ProvableMultiplier start =
        provableMultiplierOf(stmtParents_, region.startStmt);
    // A region start behind an if/switch may never execute: floor of one.
    const std::uint64_t entries =
        start.guarded ? 1 : saturatingMul(fnExec, start.trips);
    region.entryCount = entries;
    regionEntryCount_ = entries;
  }

  // Validity walk over the region children of the enclosing compound.
  WalkContext ctx;
  {
    // The region statements are consecutive children of one compound; walk
    // them in order. Find that compound by walking the function body.
    struct RegionWalker {
      MappingPlanner &planner;
      const Stmt *start;
      const Stmt *end;
      WalkContext &ctx;
      RegionPlan &region;
      bool active = false;
      bool done = false;

      void visit(const Stmt *stmt) {
        if (done || stmt == nullptr)
          return;
        if (stmt->kind() == StmtKind::Compound) {
          for (const Stmt *sub :
               static_cast<const CompoundStmt *>(stmt)->body()) {
            // The descent below may have found AND finished the region in a
            // nested compound (sole kernel inside a branch); without this
            // re-check the walk would continue into the statements after
            // that branch with `active` still set, treating post-region
            // host accesses as in-region dependencies (the oracle caught
            // this as a dead post-region update-from replacing the map's
            // `from` leg).
            if (done)
              return;
            if (sub == start)
              active = true;
            if (active)
              planner.walkStmt(sub, ctx, region);
            if (sub == end && active) {
              done = true;
              return;
            }
            if (!active)
              visit(sub); // descend looking for the region
          }
          return;
        }
        switch (stmt->kind()) {
        case StmtKind::If: {
          const auto *ifStmt = static_cast<const IfStmt *>(stmt);
          visit(ifStmt->thenStmt());
          visit(ifStmt->elseStmt());
          return;
        }
        case StmtKind::For:
          visit(static_cast<const ForStmt *>(stmt)->body());
          return;
        case StmtKind::While:
          visit(static_cast<const WhileStmt *>(stmt)->body());
          return;
        case StmtKind::Do:
          visit(static_cast<const DoStmt *>(stmt)->body());
          return;
        case StmtKind::Switch:
          visit(static_cast<const SwitchStmt *>(stmt)->body());
          return;
        case StmtKind::OmpDirective:
          visit(static_cast<const OmpDirectiveStmt *>(stmt)->associated());
          return;
        default:
          return;
        }
      }
    } walker{*this, region.startStmt, region.endStmt, ctx, region};
    walker.visit(fn->body());
  }

  // Region-exit decisions, in declaration order so map clause order is
  // stable across Sessions (facts_ is pointer-keyed; its iteration order
  // depends on heap layout).
  std::vector<VarDecl *> exitVars;
  exitVars.reserve(facts_.size());
  for (auto &[var, facts] : facts_)
    exitVars.push_back(var);
  std::sort(exitVars.begin(), exitVars.end(), varDeclBefore);
  for (VarDecl *var : exitVars) {
    VarFacts &facts = facts_[var];
    if (!facts.referencedInKernel)
      continue;
    const VarState &state = ctx.state[var];

    // Liveness: the host must see device results if the variable may be
    // read on the host after the region (paper: "the problem becomes a
    // liveness problem").
    bool needsFrom = false;
    if (facts.deviceWrite && !state.hostValid) {
      // Globals normally escape (another caller may read them), but inside
      // `main` nothing runs after the function returns and the augmented
      // event stream already covers callee accesses, so the event scan
      // below is a sound and precise liveness answer there.
      const bool preciseGlobals =
          fn->name() == "main" && var->isGlobal();
      bool liveAfter = !preciseGlobals && liveness_->escapes(var);
      if (!liveAfter) {
        for (const AccessEvent &event : accesses_->events) {
          if (event.var != var || event.onDevice || event.stmt == nullptr)
            continue;
          if (event.kind != AccessKind::Read &&
              event.kind != AccessKind::Unknown)
            continue;
          if (!event.isDataAccess())
            continue;
          if (event.stmt->range().begin.offset >= regionEndOffset_) {
            liveAfter = true;
            break;
          }
        }
      }
      needsFrom = liveAfter;
    }

    // A `from` mapping copies out unconditionally at region exit; when the
    // host wrote last (device copy stale on some path), the device must be
    // re-synchronized after that write or the copy-out clobbers newer host
    // data. Resolve it like any host->device RAW: update-to after the
    // producing write (to-direction Algorithm 1).
    if (needsFrom && !state.devValid && state.hostWroteSinceEntry &&
        state.lastHostWriteStmt != nullptr) {
      bool hoisted = false;
      const Stmt *pos = hoistAfterHostWrite(state, nullptr, hoisted);
      if (pos != nullptr)
        addUpdate(var, UpdateDirection::To, pos, UpdatePlacement::After,
                  hoisted, region);
    }

    MapSpec spec;
    spec.var = var;
    const SectionInfo section = sectionFor(var);
    spec.section = section.spelling;
    spec.extent = section.extent;
    spec.approxBytes = section.bytes;
    spec.coldEntries = regionEntryCount_;
    if (facts.needsTo && needsFrom)
      spec.mapType = OmpMapType::ToFrom;
    else if (facts.needsTo)
      spec.mapType = OmpMapType::To;
    else if (needsFrom)
      spec.mapType = OmpMapType::From;
    else
      spec.mapType = OmpMapType::Alloc;
    region.maps.push_back(spec);
  }

  // firstprivate post-pass (paper §IV-D): read-only device scalars become
  // firstprivate on each kernel instead of mapped region entries; their
  // update-to insertions are dropped because the value is passed afresh at
  // every kernel launch.
  if (options_.useFirstprivate) {
    std::vector<VarDecl *> firstprivateVars;
    for (auto &[var, facts] : facts_) {
      if (!facts.referencedInKernel || facts.deviceWrite || !facts.deviceRead)
        continue;
      if (isAggregateLike(var))
        continue;
      // Candidates: pass the scalar with each launch (no memcpy) or keep
      // the region-entry mapping.
      std::vector<Candidate> set;
      Candidate firstprivate;
      firstprivate.kind = CandidateKind::Firstprivate;
      firstprivate.transfersPerOccurrence = 0;
      firstprivate.occurrences = saturatingMul(
          regionEntryCount_,
          std::max<std::uint64_t>(1, cfg_->kernels().size()));
      firstprivate.paperRank = 0;
      set.push_back(firstprivate);
      Candidate keepMapped;
      keepMapped.kind = CandidateKind::MapAtRegion;
      keepMapped.bytesPerOccurrence = var->type()->sizeInBytes();
      keepMapped.occurrences = regionEntryCount_;
      keepMapped.paperRank = 1;
      set.push_back(keepMapped);
      if (set[costModel().choose(set)].kind != CandidateKind::Firstprivate)
        continue;
      firstprivateVars.push_back(var);
    }
    // Declaration order, for the same stability reason as the map clauses.
    std::sort(firstprivateVars.begin(), firstprivateVars.end(),
              varDeclBefore);
    for (VarDecl *var : firstprivateVars) {
      region.maps.erase(
          std::remove_if(region.maps.begin(), region.maps.end(),
                         [&](const MapSpec &spec) { return spec.var == var; }),
          region.maps.end());
      region.updates.erase(
          std::remove_if(region.updates.begin(), region.updates.end(),
                         [&](const UpdateInsertion &update) {
                           return update.var == var &&
                                  update.direction == UpdateDirection::To;
                         }),
          region.updates.end());
      for (const OmpDirectiveStmt *kernel : cfg.kernels()) {
        // Attach only to kernels that actually reference the variable.
        bool references = false;
        for (const AccessEvent &event : accesses_->events)
          if (event.var == var && event.kernel == kernel)
            references = true;
        // Skip kernels that already privatize it via an existing clause.
        for (const OmpClause &clause : kernel->clauses()) {
          if (clause.kind != OmpClauseKind::FirstPrivate &&
              clause.kind != OmpClauseKind::Private)
            continue;
          for (const OmpObject &object : clause.objects)
            if (object.var == var)
              references = false;
        }
        if (references)
          region.firstprivates.push_back(FirstprivateInsertion{kernel, var});
      }
    }
  }

  // Declaration-before-region validation (paper §IV-D): every mapped
  // variable declared inside the function must precede the region.
  bool declarationError = false;
  for (const MapSpec &spec : region.maps) {
    const VarDecl *var = spec.var;
    if (var->isGlobal() || var->isParam())
      continue;
    if (!var->declStmtRange().isValid())
      continue;
    if (var->declStmtRange().begin.offset >= regionBeginOffset_ &&
        !region.appendsToKernel()) {
      diags_.error(var->declStmtRange().begin,
                   "declaration of '" + var->name() +
                       "' must be moved before the target data region "
                       "(before offset " +
                       std::to_string(regionBeginOffset_) +
                       ") so it can be mapped");
      declarationError = true;
    }
  }
  if (declarationError)
    return;

  if (!region.maps.empty() || !region.updates.empty() ||
      !region.firstprivates.empty())
    outPlan.regions.push_back(std::move(region));
}

void MappingPlanner::walkStmt(const Stmt *stmt, WalkContext &ctx,
                              RegionPlan &region) {
  if (stmt == nullptr)
    return;
  switch (stmt->kind()) {
  case StmtKind::Compound:
    for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
      walkStmt(sub, ctx, region);
    return;
  case StmtKind::Decl:
  case StmtKind::Expr:
  case StmtKind::Return:
    processLeafEvents(stmt, ctx, region);
    return;
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(stmt);
    processLeafEvents(stmt, ctx, region); // condition reads
    auto snapshot = ctx.state;
    walkStmt(ifStmt->thenStmt(), ctx, region);
    auto thenState = std::move(ctx.state);
    ctx.state = snapshot;
    if (ifStmt->elseStmt() != nullptr)
      walkStmt(ifStmt->elseStmt(), ctx, region);
    mergeStates(ctx.state, thenState);
    return;
  }
  case StmtKind::For:
  case StmtKind::While:
  case StmtKind::Do: {
    const Stmt *body = nullptr;
    if (stmt->kind() == StmtKind::For) {
      const auto *forStmt = static_cast<const ForStmt *>(stmt);
      walkStmt(forStmt->init(), ctx, region);
      body = forStmt->body();
    } else if (stmt->kind() == StmtKind::While) {
      body = static_cast<const WhileStmt *>(stmt)->body();
    } else {
      body = static_cast<const DoStmt *>(stmt)->body();
    }
    auto entryState = ctx.state;
    ctx.loops.push_back(stmt);
    // Iterate the body until the validity state stabilizes: the second pass
    // exposes loop-carried host<->device dependencies (paper: data valid on
    // entry must be valid again at the end of the body).
    for (int iteration = 0; iteration < 4; ++iteration) {
      std::map<VarDecl *, bool> before;
      for (const auto &[var, state] : ctx.state)
        before[var] = state.hostValid && state.devValid;
      processLeafEvents(stmt, ctx, region); // cond/inc reads
      walkStmt(body, ctx, region);
      std::map<VarDecl *, bool> after;
      for (const auto &[var, state] : ctx.state)
        after[var] = state.hostValid && state.devValid;
      if (statesEqual(before, after) && iteration > 0)
        break;
    }
    ctx.loops.pop_back();
    // for/while bodies may not execute: merge with the entry state. A for
    // loop with provably positive constant trips is the exception — its
    // body definitely runs, so its kills stand (a host loop that fully
    // overwrites an array must count as a kill, or the region exit pays a
    // dead from-copy plus the update-to guarding it; oracle invariant 2).
    bool definitelyExecutes = false;
    if (const auto *forStmt = dynamic_cast<const ForStmt *>(stmt)) {
      const LoopBounds bounds = analyzeForLoop(forStmt);
      definitelyExecutes = bounds.valid && bounds.upperConst &&
                           bounds.lowerConst &&
                           *bounds.upperConst > *bounds.lowerConst;
    }
    if (stmt->kind() != StmtKind::Do && !definitelyExecutes)
      mergeStates(ctx.state, entryState);
    return;
  }
  case StmtKind::Switch: {
    const auto *switchStmt = static_cast<const SwitchStmt *>(stmt);
    processLeafEvents(stmt, ctx, region);
    auto snapshot = ctx.state;
    walkStmt(switchStmt->body(), ctx, region);
    mergeStates(ctx.state, snapshot);
    return;
  }
  case StmtKind::Case:
    walkStmt(static_cast<const CaseStmt *>(stmt)->sub(), ctx, region);
    return;
  case StmtKind::Default:
    walkStmt(static_cast<const DefaultStmt *>(stmt)->sub(), ctx, region);
    return;
  case StmtKind::OmpDirective: {
    const auto *directive = static_cast<const OmpDirectiveStmt *>(stmt);
    processLeafEvents(stmt, ctx, region); // clause values / reductions
    if (directive->associated() != nullptr)
      walkStmt(directive->associated(), ctx, region);
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Null:
    return;
  }
}

bool MappingPlanner::isKernelLocal(const VarDecl *var) const {
  // Variables declared inside an offload kernel (loop induction variables,
  // kernel-local temporaries) are device-private per OpenMP semantics and
  // never participate in mapping decisions.
  if (var == nullptr || !var->declStmtRange().isValid())
    return false;
  for (const OmpDirectiveStmt *kernel : cfg_->kernels())
    if (kernel->range().contains(var->declStmtRange()))
      return true;
  return false;
}

void MappingPlanner::processLeafEvents(const Stmt *stmt, WalkContext &ctx,
                                       RegionPlan &region) {
  auto it = accesses_->byStmt.find(stmt);
  if (it == accesses_->byStmt.end())
    return;
  for (const AccessEvent &event : it->second) {
    if (event.var == nullptr)
      continue;
    if (isAggregateLike(event.var) && !event.isDataAccess())
      continue;
    if (event.onDevice && isKernelLocal(event.var))
      continue;
    const bool reads = event.kind == AccessKind::Read ||
                       event.kind == AccessKind::Unknown;
    const bool writes = event.kind == AccessKind::Write ||
                        event.kind == AccessKind::Unknown;
    if (event.onDevice) {
      if (reads)
        handleDeviceRead(event, ctx, region);
      if (writes)
        handleDeviceWrite(event, ctx, region);
    } else {
      if (reads)
        handleHostRead(event, ctx, region);
      if (writes)
        handleHostWrite(event, ctx, region);
    }
  }
}

void MappingPlanner::handleDeviceRead(const AccessEvent &event,
                                      WalkContext &ctx, RegionPlan &region) {
  VarDecl *var = event.var;
  VarFacts &facts = facts_[var];
  facts.referencedInKernel = true;
  facts.deviceRead = true;
  VarState &state = ctx.state[var];
  if (state.devValid)
    return;
  if (!state.hostWroteSinceEntry) {
    // The value at region entry is still current. Candidates: a region-entry
    // map(to:) — one transfer for the whole region — or an `update to` at
    // the consuming kernel, re-copying on every launch.
    // Occurrence features carry the region's provable entry count: a map
    // re-pays its present-table transition copies every entry (kernel-entry
    // multiplicity), an update additionally re-executes per loop trip.
    const std::uint64_t bytes = sectionFor(var).bytes;
    std::vector<Candidate> set;
    Candidate mapEntry;
    mapEntry.kind = CandidateKind::MapAtRegion;
    mapEntry.bytesPerOccurrence = bytes;
    mapEntry.occurrences = regionEntryCount_;
    mapEntry.paperRank = 0;
    set.push_back(mapEntry);
    Candidate updateAtKernel;
    updateAtKernel.kind = CandidateKind::UpdateAtAccess;
    updateAtKernel.bytesPerOccurrence = bytes;
    updateAtKernel.occurrences =
        saturatingMul(regionEntryCount_, tripCountEstimate(ctx.loops));
    updateAtKernel.paperRank = 1;
    set.push_back(updateAtKernel);
    if (set[costModel().choose(set)].kind == CandidateKind::MapAtRegion) {
      facts.needsTo = true;
      state.devValid = true;
      return;
    }
    const Stmt *kernelAnchor =
        event.kernel != nullptr ? static_cast<const Stmt *>(event.kernel)
                                : event.stmt;
    addUpdate(var, UpdateDirection::To, kernelAnchor,
              UpdatePlacement::Before, false, region);
    state.devValid = true;
    return;
  }
  // Host produced a newer value inside the region: insert `update to` after
  // the producing write, hoisted out of index loops (to-direction variant of
  // Algorithm 1) but never above the consuming kernel boundary. The hoisted
  // and at-access positions are both valid; the cost model arbitrates.
  const Stmt *anchor =
      state.lastHostWriteStmt != nullptr ? state.lastHostWriteStmt
                                         : event.stmt;
  bool hoisted = false;
  const Stmt *pos = hoistAfterHostWrite(state, event.kernel, hoisted);
  if (pos == nullptr)
    pos = anchor;
  if (hoisted) {
    const std::uint64_t bytes = sectionFor(var).bytes;
    std::vector<Candidate> set;
    Candidate hoistedUpdate;
    hoistedUpdate.kind = CandidateKind::UpdateHoisted;
    hoistedUpdate.bytesPerOccurrence = bytes;
    hoistedUpdate.occurrences = 1;
    hoistedUpdate.paperRank = 0;
    set.push_back(hoistedUpdate);
    Candidate atWrite;
    atWrite.kind = CandidateKind::UpdateAtAccess;
    atWrite.bytesPerOccurrence = bytes;
    atWrite.occurrences = tripCountEstimate(loopsBetween(pos, anchor));
    atWrite.paperRank = 1;
    set.push_back(atWrite);
    if (set[costModel().choose(set)].kind == CandidateKind::UpdateAtAccess) {
      pos = anchor;
      hoisted = false;
    }
  }
  UpdatePlacement placement = UpdatePlacement::After;
  if (pos == anchor && anchor != nullptr &&
      (anchor->kind() == StmtKind::For || anchor->kind() == StmtKind::While ||
       anchor->kind() == StmtKind::Do) &&
      state.lastHostWriteSubscript == nullptr) {
    // The producing write sits in a loop conditional: place the update at
    // the start of the loop body (paper SIV-F).
    placement = UpdatePlacement::BodyBegin;
  }
  addUpdate(var, UpdateDirection::To, pos, placement, hoisted, region);
  state.devValid = true;
}

void MappingPlanner::handleDeviceWrite(const AccessEvent &event,
                                       WalkContext &ctx, RegionPlan &region) {
  VarDecl *var = event.var;
  VarFacts &facts = facts_[var];
  facts.referencedInKernel = true;
  facts.deviceWrite = true;
  VarState &state = ctx.state[var];

  // A partial write behaves like a read-modify-write of the whole object:
  // untouched elements must hold current values before the kernel runs.
  const ExtentInfo extent = effectiveExtent(var);
  std::vector<const Stmt *> kernelLoops;
  if (const auto *loops = cfg_->enclosingLoops(event.stmt)) {
    for (const Stmt *loop : *loops)
      if (event.kernel == nullptr || contains(event.kernel, loop))
        kernelLoops.push_back(loop);
  }
  const bool fullCoverage =
      !isAggregateLike(var) // whole-scalar writes always cover the value
          ? !event.conditional
          : isFullCoverageWrite(event, var, extent, kernelLoops);
  if (!fullCoverage && !state.devValid) {
    // A partial write needs the object's current value on the device first
    // (untouched elements must survive a later copy-out); resolve it exactly
    // like a read dependency.
    AccessEvent asRead = event;
    asRead.kind = AccessKind::Read;
    handleDeviceRead(asRead, ctx, region);
  }
  state.devValid = true;
  state.hostValid = false;
  state.lastDeviceWriteKernel = event.kernel;
}

void MappingPlanner::handleHostRead(const AccessEvent &event,
                                    WalkContext &ctx, RegionPlan &region) {
  VarDecl *var = event.var;
  VarState &state = ctx.state[var];
  if (state.hostValid)
    return;
  // True dependency: the device holds the current value. Insert an
  // `update from` before the reading statement, hoisted per Algorithm 1.
  SourceLocation locLim;
  if (state.lastDeviceWriteKernel != nullptr)
    locLim = state.lastDeviceWriteKernel->range().end;
  const bool loopCarried =
      state.lastDeviceWriteKernel != nullptr && event.stmt != nullptr &&
      state.lastDeviceWriteKernel->range().begin.offset >
          event.stmt->range().begin.offset;
  if (loopCarried) {
    // Loop-carried dependency: the producing kernel sits AFTER this read
    // in source, so the value flows around an enclosing loop. The
    // producer-end hoist limit is meaningless here (the producer ran last
    // iteration); the real bound is the body of the innermost loop
    // carrying the dependency.
    for (const Stmt *loop : ctx.loops) { // outermost-first
      if (!contains(loop, state.lastDeviceWriteKernel))
        continue;
      const Stmt *body = nullptr;
      if (loop->kind() == StmtKind::For)
        body = static_cast<const ForStmt *>(loop)->body();
      else if (loop->kind() == StmtKind::While)
        body = static_cast<const WhileStmt *>(loop)->body();
      else if (loop->kind() == StmtKind::Do)
        body = static_cast<const DoStmt *>(loop)->body();
      if (body != nullptr && body->range().isValid())
        locLim = body->range().begin; // innermost carrier wins
    }
  }
  const Stmt *pos = event.stmt;
  bool hoisted = false;
  if (options_.hoistUpdates) {
    const Stmt *found =
        findUpdateInsertLoc(event.subscript, event.stmt, ctx.loops, locLim);
    hoisted = found != event.stmt;
    pos = found;
  }
  if (hoisted) {
    // Algorithm 1 found a hoist position; the at-access placement stays a
    // valid (more frequent) alternative for the cost model to weigh.
    const std::uint64_t bytes = sectionFor(var).bytes;
    std::vector<Candidate> set;
    Candidate hoistedUpdate;
    hoistedUpdate.kind = CandidateKind::UpdateHoisted;
    hoistedUpdate.bytesPerOccurrence = bytes;
    hoistedUpdate.occurrences = 1;
    hoistedUpdate.deviceToHost = true;
    hoistedUpdate.paperRank = 0;
    set.push_back(hoistedUpdate);
    Candidate atAccess;
    atAccess.kind = CandidateKind::UpdateAtAccess;
    atAccess.bytesPerOccurrence = bytes;
    atAccess.occurrences = tripCountEstimate(loopsBetween(pos, event.stmt));
    atAccess.deviceToHost = true;
    atAccess.paperRank = 1;
    set.push_back(atAccess);
    if (set[costModel().choose(set)].kind == CandidateKind::UpdateAtAccess) {
      pos = event.stmt;
      hoisted = false;
    }
  }
  UpdatePlacement placement = UpdatePlacement::Before;
  const bool anchorIsLoopCond =
      pos == event.stmt && (pos->kind() == StmtKind::For ||
                            pos->kind() == StmtKind::While ||
                            pos->kind() == StmtKind::Do);
  if (anchorIsLoopCond) {
    // Reading stale data in a loop conditional: when the producing kernel
    // runs inside the same loop the value changes every iteration, so the
    // update belongs at the end of the loop body (always, for do-loops,
    // whose condition evaluates after the body — paper SIV-F).
    const bool producerInsideLoop =
        state.lastDeviceWriteKernel != nullptr &&
        contains(pos, state.lastDeviceWriteKernel);
    if (producerInsideLoop || pos->kind() == StmtKind::Do)
      placement = UpdatePlacement::BodyEnd;
  }
  // A loop-carried update firing BEFORE its anchor executes ahead of the
  // producer on the first trip — the device image must already be valid,
  // so the map needs its `to` leg (without it the first firing copies
  // uninitialized device memory over live host data; oracle invariant 1
  // caught that). BodyEnd placements fire after the in-loop producer and
  // need no entry copy (bfs's stop_flag stays map(alloc)).
  if (loopCarried && placement == UpdatePlacement::Before)
    facts_[var].needsTo = true;
  addUpdate(var, UpdateDirection::From, pos, placement, hoisted, region);
  state.hostValid = true;
}

const Stmt *MappingPlanner::hoistAfterHostWrite(
    const VarState &state, const OmpDirectiveStmt *consumerKernel,
    bool &hoisted) const {
  hoisted = false;
  const Stmt *pos = state.lastHostWriteStmt;
  if (pos == nullptr)
    return nullptr;
  if (!options_.hoistUpdates || state.lastHostWriteSubscript == nullptr)
    return pos;
  const auto *loops = cfg_->enclosingLoops(state.lastHostWriteStmt);
  if (loops == nullptr)
    return pos;
  const auto indexVars = referencedIndexVars(state.lastHostWriteSubscript);
  for (auto loopIt = loops->rbegin(); loopIt != loops->rend(); ++loopIt) {
    const Stmt *loop = *loopIt;
    if (loop->range().begin.offset < regionBeginOffset_)
      break; // never hoist outside the data region
    if (consumerKernel != nullptr && contains(loop, consumerKernel))
      break; // hoisting past the consumer would reorder the update
    VarDecl *inductionVar = findIndexingVar(loop);
    if (inductionVar == nullptr)
      continue;
    if (std::find(indexVars.begin(), indexVars.end(), inductionVar) !=
        indexVars.end()) {
      pos = loop;
      hoisted = true;
    }
  }
  return pos;
}

void MappingPlanner::handleHostWrite(const AccessEvent &event,
                                     WalkContext &ctx, RegionPlan &region) {
  VarDecl *var = event.var;
  VarState &state = ctx.state[var];

  // A host write only KILLS the variable when it provably overwrites every
  // element; a partial write of device-valid data must sync the untouched
  // elements down first (device->host RAW: exactly a host read), or later
  // host reads of those elements see stale values. Direct writes prove
  // coverage against the enclosing loop bounds; call-synthesized writes
  // carry the interprocedural proof (callee full sweep whose bound equals
  // the argument's extent at the site).
  bool fullCoverage;
  if (!isAggregateLike(var)) {
    fullCoverage = !event.conditional;
  } else if (event.fromCall) {
    fullCoverage = event.provenFullCoverage;
  } else {
    const ExtentInfo extent = effectiveExtent(var);
    // Single-slot objects (scalars behind [1]-arrays, structs written
    // whole) are covered by any unconditional element write.
    if (extent.constElems && *extent.constElems == 1)
      fullCoverage = !event.conditional;
    else {
      std::vector<const Stmt *> loops;
      if (const auto *enclosing = cfg_->enclosingLoops(event.stmt))
        loops = *enclosing;
      fullCoverage = isFullCoverageWrite(event, var, extent, loops);
    }
  }
  if (!fullCoverage && !state.hostValid) {
    AccessEvent asRead = event;
    asRead.kind = AccessKind::Read;
    handleHostRead(asRead, ctx, region);
  }

  state.hostValid = true;
  state.devValid = false;
  state.hostWroteSinceEntry = true;
  state.lastHostWriteStmt = event.stmt;
  state.lastHostWriteSubscript = event.subscript;
}

void MappingPlanner::mergeStates(
    std::map<VarDecl *, VarState> &into,
    const std::map<VarDecl *, VarState> &branch) {
  for (const auto &[var, branchState] : branch) {
    VarState &state = into[var];
    state.hostValid = state.hostValid && branchState.hostValid;
    state.devValid = state.devValid && branchState.devValid;
    state.hostWroteSinceEntry =
        state.hostWroteSinceEntry || branchState.hostWroteSinceEntry;
    if (state.lastHostWriteStmt == nullptr)
      state.lastHostWriteStmt = branchState.lastHostWriteStmt;
    if (state.lastHostWriteSubscript == nullptr)
      state.lastHostWriteSubscript = branchState.lastHostWriteSubscript;
    if (state.lastDeviceWriteKernel == nullptr)
      state.lastDeviceWriteKernel = branchState.lastDeviceWriteKernel;
  }
}

void MappingPlanner::addUpdate(VarDecl *var, UpdateDirection direction,
                               const Stmt *anchor, UpdatePlacement placement,
                               bool hoisted, RegionPlan &region) {
  const auto key = std::make_tuple(var, direction, anchor);
  if (!updateKeys_.insert(key).second)
    return;
  UpdateInsertion update;
  update.var = var;
  update.direction = direction;
  update.anchor = anchor;
  update.placement = placement;
  update.hoisted = hoisted;
  const SectionInfo section = sectionFor(var);
  update.section = section.spelling;
  update.extent = section.extent;
  update.approxBytes = section.bytes;
  update.executions = updateExecutionsAt(anchor, placement);
  region.updates.push_back(std::move(update));
}

ExtentInfo MappingPlanner::effectiveExtent(VarDecl *var) const {
  return extents_.effectiveExtent(var);
}

MappingPlanner::SectionInfo MappingPlanner::sectionFor(VarDecl *var) const {
  auto it = sectionMemo_.find(var);
  if (it == sectionMemo_.end()) {
    SectionMemo memo;
    memo.info = computeSectionFor(var, memo.warned);
    it = sectionMemo_.emplace(var, std::move(memo)).first;
    return it->second.info;
  }
  if (it->second.warned) {
    diags_.warning(var->range().begin,
                   "cannot determine extent of pointer '" + var->name() +
                       "'; mapping requires a known allocation size");
  }
  return it->second.info;
}

MappingPlanner::SectionInfo
MappingPlanner::computeSectionFor(VarDecl *var, bool &warned) const {
  const ExtentInfo extent = effectiveExtent(var);
  const Type *base = scalarBaseType(var->type());
  const std::uint64_t elemSize = base != nullptr ? base->sizeInBytes() : 1;

  if (var->type()->isPointer()) {
    if (!extent.known()) {
      warned = true;
      diags_.warning(var->range().begin,
                     "cannot determine extent of pointer '" + var->name() +
                         "'; mapping requires a known allocation size");
      return {var->name() + "[0:0]", 0, ir::Extent::constant(0)};
    }
    std::uint64_t bytes =
        extent.constElems ? *extent.constElems * elemSize : 0;
    if (!extent.constElems) {
      // Symbolic extents (e.g. "npoints") keep their source spelling in the
      // emitted clause, but the transfer predictor still needs bytes: fold
      // the extent expression, substituting the constant every call site
      // agrees on when it names a parameter.
      if (const auto elems = symbolicExtentElems(extent))
        bytes = *elems * elemSize;
    }
    return {var->name() + "[0:" + extent.spelling + "]", bytes,
            extent.constElems ? ir::Extent::constant(*extent.constElems)
                              : ir::Extent::symbolic(extent.spelling)};
  }
  if (var->type()->isArray()) {
    // Guo-style unused-segment filtering: when every device access is
    // provably bounded below the declared extent, map the smaller section.
    std::optional<std::uint64_t> maxUpper;
    bool allBounded = true;
    for (const AccessEvent &event : accesses_->events) {
      if (event.var != var || !event.onDevice || !event.isDataAccess())
        continue;
      if (event.subscript == nullptr) {
        allBounded = false;
        break;
      }
      // Direct single-dimension `a[i]` with an analyzable enclosing loop.
      const Expr *baseExpr = ignoreParensAndCasts(event.subscript->base());
      if (baseExpr == nullptr ||
          baseExpr->kind() == ExprKind::ArraySubscript) {
        allBounded = false;
        break;
      }
      VarDecl *indexVar =
          referencedVar(ignoreParensAndCasts(event.subscript->index()));
      const auto *loops = cfg_->enclosingLoops(event.stmt);
      bool bounded = false;
      if (indexVar != nullptr && loops != nullptr) {
        for (const Stmt *loop : *loops) {
          const auto *forStmt = dynamic_cast<const ForStmt *>(loop);
          if (forStmt == nullptr)
            continue;
          const LoopBounds loopBounds = analyzeForLoop(forStmt);
          if (!loopBounds.valid || loopBounds.inductionVar != indexVar)
            continue;
          if (loopBounds.upperConst && loopBounds.lowerConst &&
              *loopBounds.lowerConst >= 0) {
            maxUpper = std::max<std::uint64_t>(
                maxUpper.value_or(0),
                static_cast<std::uint64_t>(*loopBounds.upperConst));
            bounded = true;
          }
          break;
        }
      } else if (const auto constIndex =
                     foldIntegerConstant(event.subscript->index());
                 constIndex && *constIndex >= 0) {
        maxUpper = std::max<std::uint64_t>(
            maxUpper.value_or(0), static_cast<std::uint64_t>(*constIndex) + 1);
        bounded = true;
      }
      if (!bounded) {
        allBounded = false;
        break;
      }
    }
    if (allBounded && maxUpper && extent.constElems &&
        *maxUpper < *extent.constElems) {
      return {var->name() + "[0:" + std::to_string(*maxUpper) + "]",
              *maxUpper * elemSize, ir::Extent::constant(*maxUpper)};
    }
    const std::uint64_t bytes =
        extent.constElems ? *extent.constElems * elemSize : 0;
    return {var->name(), bytes, ir::Extent::whole()};
  }
  // Scalars and records map whole.
  return {var->name(), var->type()->sizeInBytes(), ir::Extent::whole()};
}

std::optional<std::uint64_t>
MappingPlanner::symbolicExtentElems(const ExtentInfo &extent) const {
  return extents_.symbolicExtentElems(extent);
}

const CostModel &MappingPlanner::costModel() const {
  return options_.costModel != nullptr ? *options_.costModel
                                       : defaultCostModel_;
}

std::vector<const Stmt *>
MappingPlanner::loopsBetween(const Stmt *outer, const Stmt *inner) const {
  std::vector<const Stmt *> result;
  const auto *loops = cfg_->enclosingLoops(inner);
  if (loops == nullptr)
    return result;
  for (const Stmt *loop : *loops)
    if (outer == nullptr || loop == outer || contains(outer, loop))
      result.push_back(loop);
  return result;
}

std::uint64_t MappingPlanner::tripCountEstimate(
    const std::vector<const Stmt *> &loops) const {
  std::uint64_t product = 1;
  for (const Stmt *loop : loops) {
    std::uint64_t trips = kUnknownTripCount;
    if (const auto *forStmt = dynamic_cast<const ForStmt *>(loop)) {
      const LoopBounds bounds = analyzeForLoop(forStmt);
      if (bounds.valid && bounds.upperConst && bounds.lowerConst &&
          *bounds.upperConst > *bounds.lowerConst)
        trips = static_cast<std::uint64_t>(*bounds.upperConst -
                                           *bounds.lowerConst);
    }
    product *= std::min<std::uint64_t>(trips, 1u << 20);
    if (product > (std::uint64_t{1} << 40))
      return std::uint64_t{1} << 40; // saturate: "executes a lot"
  }
  return product;
}

const Stmt *MappingPlanner::stmtParent(const Stmt *stmt) const {
  auto it = stmtParents_.find(stmt);
  return it != stmtParents_.end() ? it->second : nullptr;
}

std::vector<const Stmt *>
MappingPlanner::parentChainOf(const Stmt *stmt) const {
  std::vector<const Stmt *> chain;
  for (const Stmt *cursor = stmt; cursor != nullptr;
       cursor = stmtParent(cursor))
    chain.push_back(cursor);
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::uint64_t
MappingPlanner::updateExecutionsAt(const Stmt *anchor,
                                   UpdatePlacement placement) const {
  // Provable trips of unguarded region loops enclosing the insertion
  // point; loops outside the region (and callers) are already folded into
  // the region entry count. `stmtParents_` covers arbitrary anchors,
  // including loop statements Algorithm 1 hoisted to, which the CFG loop
  // stacks do not key. Any if/switch ancestor means the update may never
  // execute: charge the floor of one.
  const ProvableMultiplier multiplier =
      provableMultiplierOf(stmtParents_, anchor, regionBeginOffset_);
  if (multiplier.guarded)
    return 1;
  std::uint64_t product = multiplier.trips;
  // Body placements execute inside the anchor loop itself.
  if ((placement == UpdatePlacement::BodyBegin ||
       placement == UpdatePlacement::BodyEnd) &&
      isLoopStmt(anchor))
    product = saturatingMul(product, loopTripsOrOne(anchor));
  return saturatingMul(regionEntryCount_, product);
}

MappingPlan planMappings(const TranslationUnit &unit,
                         const InterproceduralResult &interproc,
                         DiagnosticEngine &diags, PlannerOptions options,
                         const std::vector<std::unique_ptr<AstCfg>> *cfgs) {
  MappingPlanner planner(unit, interproc, diags, options);
  return cfgs != nullptr ? planner.plan(*cfgs) : planner.plan();
}

} // namespace ompdart
