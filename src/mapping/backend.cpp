#include "mapping/backend.hpp"

#include "rewrite/rewriter.hpp"

#include <cctype>
#include <map>
#include <set>

namespace ompdart {

// ---------------------------------------------------------------------------
// SourceRewriteBackend / JsonBackend
// ---------------------------------------------------------------------------

bool SourceRewriteBackend::consume(const PlanConsumerInput &input) {
  if (input.ir == nullptr)
    return fail("source-rewrite backend needs a Mapping IR");
  if (input.source == nullptr)
    return fail("source-rewrite backend needs the original source buffer");
  transformed_ = applyMappingIr(*input.source, *input.ir);
  return true;
}

bool JsonBackend::consume(const PlanConsumerInput &input) {
  if (input.ir == nullptr)
    return fail("json backend needs a Mapping IR");
  value_ = input.ir->toJson();
  return true;
}

// ---------------------------------------------------------------------------
// ApplyToInterpBackend: IR -> AST resolution
// ---------------------------------------------------------------------------

namespace {

/// Index of the parsed unit keyed by the stable identities the IR records:
/// statement source ranges, kernel pragma-end offsets, and variable
/// declaration offsets. Also collects per-function name scopes for extent
/// expression resolution.
class AstIndex {
public:
  explicit AstIndex(const TranslationUnit &unit) {
    for (VarDecl *var : unit.globals) {
      registerVar(var);
      globalScope_[var->name()] = var;
    }
    for (const FunctionDecl *fn : unit.functions) {
      auto &scope = scopes_[fn->name()];
      scope = globalScope_;
      for (VarDecl *param : fn->params()) {
        registerVar(param);
        scope[param->name()] = param;
      }
      currentScope_ = &scope;
      visit(fn->body());
      currentScope_ = nullptr;
    }
  }

  [[nodiscard]] const Stmt *stmtAt(std::size_t beginOffset,
                                   std::size_t endOffset) const {
    auto it = stmtsByRange_.find({beginOffset, endOffset});
    return it != stmtsByRange_.end() ? it->second : nullptr;
  }

  [[nodiscard]] const OmpDirectiveStmt *
  kernelByPragmaEnd(std::size_t offset) const {
    auto it = kernelsByPragmaEnd_.find(offset);
    return it != kernelsByPragmaEnd_.end() ? it->second : nullptr;
  }

  [[nodiscard]] VarDecl *resolve(const ir::Symbol &symbol) const {
    auto it = varsByNameAndOffset_.find({symbol.name, symbol.declOffset});
    return it != varsByNameAndOffset_.end() ? it->second : nullptr;
  }

  /// Name scope of one function (globals + params + locals), for resolving
  /// symbolic extent spellings like "n" or "nb * hid".
  [[nodiscard]] const std::map<std::string, VarDecl *> *
  scopeOf(const std::string &function) const {
    auto it = scopes_.find(function);
    return it != scopes_.end() ? &it->second : nullptr;
  }

private:
  void registerVar(VarDecl *var) {
    // Mirror of liftPlan's symbol identity: declaration-statement offset
    // when known, the variable's own range otherwise.
    const SourceRange range =
        var->declStmtRange().isValid() ? var->declStmtRange() : var->range();
    varsByNameAndOffset_.emplace(
        std::make_pair(var->name(), range.begin.offset), var);
  }

  void visit(const Stmt *stmt) {
    if (stmt == nullptr)
      return;
    // Parents registered before children: on range collisions the outermost
    // statement wins, which is what region/update anchors reference.
    stmtsByRange_.emplace(
        std::make_pair(stmt->range().begin.offset, stmt->range().end.offset),
        stmt);
    switch (stmt->kind()) {
    case StmtKind::Compound:
      for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
        visit(sub);
      return;
    case StmtKind::Decl:
      if (currentScope_ != nullptr) {
        for (VarDecl *var :
             static_cast<const DeclStmt *>(stmt)->decls()) {
          registerVar(var);
          (*currentScope_)[var->name()] = var;
        }
      }
      return;
    case StmtKind::If: {
      const auto *ifStmt = static_cast<const IfStmt *>(stmt);
      visit(ifStmt->thenStmt());
      visit(ifStmt->elseStmt());
      return;
    }
    case StmtKind::For: {
      const auto *forStmt = static_cast<const ForStmt *>(stmt);
      visit(forStmt->init());
      visit(forStmt->body());
      return;
    }
    case StmtKind::While:
      visit(static_cast<const WhileStmt *>(stmt)->body());
      return;
    case StmtKind::Do:
      visit(static_cast<const DoStmt *>(stmt)->body());
      return;
    case StmtKind::Switch:
      visit(static_cast<const SwitchStmt *>(stmt)->body());
      return;
    case StmtKind::Case:
      visit(static_cast<const CaseStmt *>(stmt)->sub());
      return;
    case StmtKind::Default:
      visit(static_cast<const DefaultStmt *>(stmt)->sub());
      return;
    case StmtKind::OmpDirective: {
      const auto *directive = static_cast<const OmpDirectiveStmt *>(stmt);
      kernelsByPragmaEnd_.emplace(directive->pragmaRange().end.offset,
                                  directive);
      visit(directive->associated());
      return;
    }
    default:
      return;
    }
  }

  std::map<std::pair<std::size_t, std::size_t>, const Stmt *> stmtsByRange_;
  std::map<std::size_t, const OmpDirectiveStmt *> kernelsByPragmaEnd_;
  std::map<std::pair<std::string, std::size_t>, VarDecl *>
      varsByNameAndOffset_;
  std::map<std::string, VarDecl *> globalScope_;
  std::map<std::string, std::map<std::string, VarDecl *>> scopes_;
  std::map<std::string, VarDecl *> *currentScope_ = nullptr;
};

/// Recursive-descent parser for IR extent spellings: integer literals,
/// identifiers resolved in the region function's scope, + - * / % and
/// parentheses — the shapes `exprToSource` produces for loop bounds and
/// malloc extents. Nodes are created in the backend's scratch arena.
class ExtentExprParser {
public:
  ExtentExprParser(const std::string &text,
                   const std::map<std::string, VarDecl *> &scope,
                   ASTContext &scratch)
      : text_(text), scope_(scope), scratch_(scratch) {}

  /// Null on any token/semantic failure (caller falls back to whole-object).
  [[nodiscard]] Expr *parse() {
    Expr *expr = parseAdditive();
    skipSpace();
    return pos_ == text_.size() ? expr : nullptr;
  }

private:
  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  [[nodiscard]] bool eat(char c) {
    skipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Expr *parseAdditive() {
    Expr *lhs = parseMultiplicative();
    while (lhs != nullptr) {
      if (eat('+'))
        lhs = combine(BinaryOp::Add, lhs, parseMultiplicative());
      else if (eat('-'))
        lhs = combine(BinaryOp::Sub, lhs, parseMultiplicative());
      else
        break;
    }
    return lhs;
  }

  Expr *parseMultiplicative() {
    Expr *lhs = parseFactor();
    while (lhs != nullptr) {
      if (eat('*'))
        lhs = combine(BinaryOp::Mul, lhs, parseFactor());
      else if (eat('/'))
        lhs = combine(BinaryOp::Div, lhs, parseFactor());
      else if (eat('%'))
        lhs = combine(BinaryOp::Rem, lhs, parseFactor());
      else
        break;
    }
    return lhs;
  }

  Expr *combine(BinaryOp op, Expr *lhs, Expr *rhs) {
    if (lhs == nullptr || rhs == nullptr)
      return nullptr;
    return scratch_.createExpr<BinaryExpr>(op, lhs, rhs,
                                           scratch_.types().intType());
  }

  Expr *parseFactor() {
    skipSpace();
    if (eat('(')) {
      Expr *inner = parseAdditive();
      if (inner == nullptr || !eat(')'))
        return nullptr;
      return inner;
    }
    if (pos_ < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      std::int64_t value = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        value = value * 10 + (text_[pos_++] - '0');
      return scratch_.createExpr<IntLiteralExpr>(value,
                                                 scratch_.types().intType());
    }
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      std::string name;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_'))
        name.push_back(text_[pos_++]);
      auto it = scope_.find(name);
      if (it == scope_.end())
        return nullptr;
      return scratch_.createExpr<DeclRefExpr>(it->second,
                                              it->second->type());
    }
    return nullptr;
  }

  const std::string &text_;
  const std::map<std::string, VarDecl *> &scope_;
  ASTContext &scratch_;
  std::size_t pos_ = 0;
};

} // namespace

bool ApplyToInterpBackend::consume(const PlanConsumerInput &input) {
  if (input.ir == nullptr)
    return fail("apply-to-interp backend needs a Mapping IR");
  if (input.unit == nullptr)
    return fail("apply-to-interp backend needs the parsed unit");
  const ir::MappingIr &ir = *input.ir;
  const TranslationUnit &unit = *input.unit;
  AstIndex index(unit);

  overlay_ = interp::PlanOverlay{};

  auto resolveVar = [&](ir::SymbolId id, const char *what) -> VarDecl * {
    const ir::Symbol *symbol = ir.symbol(id);
    if (symbol == nullptr) {
      fail(std::string("IR references an unknown symbol in ") + what);
      return nullptr;
    }
    VarDecl *var = index.resolve(*symbol);
    if (var == nullptr)
      fail("cannot resolve symbol '" + symbol->name +
           "' against the parsed unit");
    return var;
  };

  auto makeObject = [&](VarDecl *var, const std::string &item,
                        const ir::Extent &extent,
                        const std::map<std::string, VarDecl *> *scope)
      -> OmpObject {
    OmpObject object;
    object.var = var;
    object.spelling = item;
    Expr *length = nullptr;
    switch (extent.kind) {
    case ir::Extent::Kind::Whole:
      break; // no section: map the whole object
    case ir::Extent::Kind::Const:
      length = scratch_.createExpr<IntLiteralExpr>(
          static_cast<std::int64_t>(extent.constElems),
          scratch_.types().intType());
      break;
    case ir::Extent::Kind::Expr:
      if (scope != nullptr) {
        ExtentExprParser parser(extent.expr, *scope, scratch_);
        length = parser.parse();
      }
      break; // unresolvable spellings fall back to whole-object
    }
    if (length != nullptr) {
      OmpArraySectionDim dim;
      dim.lower = scratch_.createExpr<IntLiteralExpr>(
          0, scratch_.types().intType());
      dim.length = length;
      object.sections.push_back(dim);
    }
    return object;
  };

  for (const ir::Region &region : ir.regions) {
    const auto *scope = index.scopeOf(region.function);
    interp::PlanOverlay::Region out;
    if (region.appendsToKernel) {
      out.soleKernel =
          index.kernelByPragmaEnd(region.soleKernelPragmaEndOffset);
      if (out.soleKernel == nullptr)
        return fail("cannot resolve the sole kernel of region '" +
                    region.function + "'");
    } else {
      out.startStmt =
          index.stmtAt(region.start.beginOffset, region.start.endOffset);
      out.endStmt =
          index.stmtAt(region.end.beginOffset, region.end.endOffset);
      if (out.startStmt == nullptr || out.endStmt == nullptr)
        return fail("cannot resolve the extent of region '" +
                    region.function + "'");
    }
    for (const ir::MapItem &map : region.maps) {
      VarDecl *var = resolveVar(map.symbol, "a map clause");
      if (var == nullptr)
        return false;
      interp::PlanOverlay::MapEntry entry;
      entry.object = makeObject(var, map.item, map.extent, scope);
      switch (map.type) {
      case ir::MapType::Alloc:
        entry.mapType = OmpMapType::Alloc;
        break;
      case ir::MapType::To:
        entry.mapType = OmpMapType::To;
        break;
      case ir::MapType::From:
        entry.mapType = OmpMapType::From;
        break;
      case ir::MapType::ToFrom:
        entry.mapType = OmpMapType::ToFrom;
        break;
      case ir::MapType::Release:
        entry.mapType = OmpMapType::Release;
        break;
      case ir::MapType::Delete:
        entry.mapType = OmpMapType::Delete;
        break;
      }
      out.maps.push_back(std::move(entry));
    }

    // Updates consolidate per insertion point in rewritten source (one
    // directive, deduped items); mirror that dedupe so the overlay issues
    // the same number of copies. The insertion offset is computable only
    // with the source buffer; fall back to the anchor itself without one.
    std::set<std::tuple<std::size_t, int, std::string>> seenPoints;
    for (const ir::UpdateItem &update : region.updates) {
      const std::size_t point =
          input.source != nullptr
              ? updateInsertionOffset(*input.source, update)
              : update.anchor.beginOffset;
      if (!seenPoints
               .insert({point, static_cast<int>(update.direction),
                        update.item})
               .second)
        continue;
      VarDecl *var = resolveVar(update.symbol, "an update directive");
      if (var == nullptr)
        return false;
      interp::PlanOverlay::Update out_update;
      out_update.anchor =
          index.stmtAt(update.anchor.beginOffset, update.anchor.endOffset);
      if (out_update.anchor == nullptr)
        return fail("cannot resolve the anchor of an update on '" +
                    var->name() + "'");
      out_update.toDevice = update.direction == ir::UpdateDirection::To;
      out_update.placement = update.placement;
      out_update.object = makeObject(var, update.item, update.extent, scope);
      overlay_.updates.push_back(std::move(out_update));
    }

    for (const ir::FirstprivateItem &fp : region.firstprivates) {
      VarDecl *var = resolveVar(fp.symbol, "a firstprivate clause");
      if (var == nullptr)
        return false;
      interp::PlanOverlay::Firstprivate out_fp;
      out_fp.kernel = index.kernelByPragmaEnd(fp.kernelPragmaEndOffset);
      if (out_fp.kernel == nullptr)
        return fail("cannot resolve the kernel of firstprivate '" +
                    var->name() + "'");
      out_fp.var = var;
      overlay_.firstprivates.push_back(out_fp);
    }

    overlay_.regions.push_back(std::move(out));
  }

  interp::Interpreter interpreter(unit, options_, &overlay_);
  result_ = interpreter.run();
  return true;
}

} // namespace ompdart
