// Candidate generation + pluggable cost models for the mapping planner.
//
// The planner no longer hard-codes the paper's greedy rule. At each
// decision point it enumerates the semantically valid *candidates* for
// resolving a dependency (map at region entry, hoisted update, update at
// the access, firstprivate, region extent choices) with estimated traffic
// features, and a CostModel scores them; the lowest score wins (stable
// tie-break on enumeration order). Two models ship:
//
//   PaperGreedyCostModel — scores by the paper's fixed preference order
//     (§IV-D/§IV-E), reproducing the original planner byte-for-byte. This
//     is the default.
//   SimCostModel — scores by modeled seconds using the simulated runtime's
//     sim::CostModel rates (bandwidth, per-transfer latency), making plans
//     genuinely cost-driven and comparable against simulated ledgers.
//
// The ablation switches (PlannerOptions) act as candidate *filters*: an
// ablation removes candidates from the set rather than forking the planner
// logic, so every ablation is expressible as a cost-model/config variant.
#pragma once

#include "sim/runtime.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ompdart {

/// What a candidate would do to resolve one dependency (or shape a region).
enum class CandidateKind {
  MapAtRegion,     ///< satisfy via a region-entry/exit map clause
  UpdateHoisted,   ///< `target update` hoisted out of indexing loops
  UpdateAtAccess,  ///< `target update` at the innermost access position
  Firstprivate,    ///< pass a read-only scalar per kernel launch
  RegionOverLoops, ///< extend the data region over loops enclosing kernels
  RegionPerKernel, ///< keep the data region at the kernel statements
};

[[nodiscard]] const char *candidateKindName(CandidateKind kind);

/// One scored alternative. Features are estimates computed by the planner
/// from static analysis: bytes per transfer occurrence, how often the
/// transfer executes (loop-trip products; `kUnknownTripCount` per
/// unanalyzable loop level), and how many memcpy calls each occurrence
/// issues.
struct Candidate {
  CandidateKind kind = CandidateKind::MapAtRegion;
  /// Bytes moved per occurrence (0 when statically unknown).
  std::uint64_t bytesPerOccurrence = 0;
  /// Estimated executions per program run (>= 1).
  std::uint64_t occurrences = 1;
  /// Simulated memcpy calls per occurrence (firstprivate: 0).
  unsigned transfersPerOccurrence = 1;
  /// Direction of the transfer, for models with asymmetric link rates
  /// (from-direction updates move device-to-host).
  bool deviceToHost = false;
  /// The paper's greedy preference at this decision point (lower wins).
  int paperRank = 0;
};

/// Assumed trip count for loops whose bounds defeat static analysis.
inline constexpr std::uint64_t kUnknownTripCount = 64;

/// Scoring interface. Lower scores win; `choose` breaks ties toward the
/// earliest candidate, so enumeration order encodes the fallback.
class CostModel {
public:
  virtual ~CostModel() = default;
  [[nodiscard]] virtual const char *name() const = 0;
  [[nodiscard]] virtual double score(const Candidate &candidate) const = 0;

  /// Index of the minimum-score candidate (first on ties). The set must be
  /// non-empty.
  [[nodiscard]] std::size_t choose(const std::vector<Candidate> &set) const;
};

/// The paper's fixed greedy rule as a cost function: score == paperRank.
/// Byte-for-byte identical output to the pre-candidate planner.
class PaperGreedyCostModel final : public CostModel {
public:
  [[nodiscard]] const char *name() const override { return "paper-greedy"; }
  [[nodiscard]] double score(const Candidate &candidate) const override {
    return static_cast<double>(candidate.paperRank);
  }
};

/// Cost-driven scoring: modeled seconds under the simulated runtime's
/// transfer rates. Ranks alternatives by estimated wall-clock transfer
/// time instead of a fixed preference order.
class SimCostModel final : public CostModel {
public:
  explicit SimCostModel(sim::CostModel rates = {}) : rates_(rates) {}

  [[nodiscard]] const char *name() const override { return "sim"; }
  [[nodiscard]] double score(const Candidate &candidate) const override;

  [[nodiscard]] const sim::CostModel &rates() const { return rates_; }

private:
  sim::CostModel rates_;
};

/// Registry: construct a model by name ("paper-greedy" | "sim"); null for
/// unknown names.
[[nodiscard]] std::unique_ptr<CostModel>
makeCostModel(const std::string &name);

/// All registered model names, for CLI help/error messages.
[[nodiscard]] const std::vector<std::string> &costModelNames();

} // namespace ompdart
