// Typed AST for the C subset with OpenMP offload directives. Mirrors the
// Clang node inventory that OMPDart consumes (Table I of the paper) closely
// enough that the paper's analyses translate one-to-one. All nodes are owned
// by an ASTContext arena and passed around as raw non-owning pointers.
#pragma once

#include "frontend/type.hpp"
#include "support/arena.hpp"
#include "support/source_location.hpp"

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace ompdart {

class Expr;
class Stmt;
class VarDecl;
class FunctionDecl;
class RecordDecl;
class CompoundStmt;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,
  DeclRef,
  ArraySubscript,
  Member,
  Call,
  Unary,
  Binary,
  Conditional,
  Cast,
  Paren,
  InitList,
  Sizeof,
};

enum class UnaryOp {
  Plus,
  Minus,
  Not,     // ~
  LNot,    // !
  Deref,   // *
  AddrOf,  // &
  PreInc,
  PreDec,
  PostInc,
  PostDec,
};

enum class BinaryOp {
  Mul,
  Div,
  Rem,
  Add,
  Sub,
  Shl,
  Shr,
  LT,
  GT,
  LE,
  GE,
  EQ,
  NE,
  BitAnd,
  BitXor,
  BitOr,
  LAnd,
  LOr,
  Assign,
  MulAssign,
  DivAssign,
  RemAssign,
  AddAssign,
  SubAssign,
  ShlAssign,
  ShrAssign,
  AndAssign,
  XorAssign,
  OrAssign,
  Comma,
};

[[nodiscard]] bool isAssignmentOp(BinaryOp op);
[[nodiscard]] bool isCompoundAssignmentOp(BinaryOp op);
[[nodiscard]] const char *binaryOpSpelling(BinaryOp op);
[[nodiscard]] const char *unaryOpSpelling(UnaryOp op);

class Expr {
public:
  virtual ~Expr() = default;

  [[nodiscard]] ExprKind kind() const { return kind_; }
  [[nodiscard]] const Type *type() const { return type_; }
  [[nodiscard]] SourceRange range() const { return range_; }

  void setType(const Type *type) { type_ = type; }
  void setRange(SourceRange range) { range_ = range; }

protected:
  Expr(ExprKind kind, const Type *type) : kind_(kind), type_(type) {}

private:
  ExprKind kind_;
  const Type *type_ = nullptr;
  SourceRange range_;
};

class IntLiteralExpr final : public Expr {
public:
  IntLiteralExpr(std::int64_t value, const Type *type)
      : Expr(ExprKind::IntLiteral, type), value_(value) {}
  [[nodiscard]] std::int64_t value() const { return value_; }

private:
  std::int64_t value_;
};

class FloatLiteralExpr final : public Expr {
public:
  FloatLiteralExpr(double value, const Type *type)
      : Expr(ExprKind::FloatLiteral, type), value_(value) {}
  [[nodiscard]] double value() const { return value_; }

private:
  double value_;
};

class CharLiteralExpr final : public Expr {
public:
  CharLiteralExpr(char value, const Type *type)
      : Expr(ExprKind::CharLiteral, type), value_(value) {}
  [[nodiscard]] char value() const { return value_; }

private:
  char value_;
};

class StringLiteralExpr final : public Expr {
public:
  StringLiteralExpr(std::string value, const Type *type)
      : Expr(ExprKind::StringLiteral, type), value_(std::move(value)) {}
  [[nodiscard]] const std::string &value() const { return value_; }

private:
  std::string value_;
};

class DeclRefExpr final : public Expr {
public:
  DeclRefExpr(VarDecl *decl, const Type *type)
      : Expr(ExprKind::DeclRef, type), decl_(decl) {}
  [[nodiscard]] VarDecl *decl() const { return decl_; }

private:
  VarDecl *decl_;
};

class ArraySubscriptExpr final : public Expr {
public:
  ArraySubscriptExpr(Expr *base, Expr *index, const Type *type)
      : Expr(ExprKind::ArraySubscript, type), base_(base), index_(index) {}
  [[nodiscard]] Expr *base() const { return base_; }
  [[nodiscard]] Expr *index() const { return index_; }

private:
  Expr *base_;
  Expr *index_;
};

class MemberExpr final : public Expr {
public:
  MemberExpr(Expr *base, std::string member, bool isArrow, const Type *type)
      : Expr(ExprKind::Member, type), base_(base), member_(std::move(member)),
        isArrow_(isArrow) {}
  [[nodiscard]] Expr *base() const { return base_; }
  [[nodiscard]] const std::string &member() const { return member_; }
  [[nodiscard]] bool isArrow() const { return isArrow_; }

private:
  Expr *base_;
  std::string member_;
  bool isArrow_;
};

class CallExpr final : public Expr {
public:
  CallExpr(std::string calleeName, FunctionDecl *callee,
           std::vector<Expr *> args, const Type *type)
      : Expr(ExprKind::Call, type), calleeName_(std::move(calleeName)),
        callee_(callee), args_(std::move(args)) {}
  [[nodiscard]] const std::string &calleeName() const { return calleeName_; }
  /// Resolved declaration; null for builtins (printf, exp, malloc, ...).
  [[nodiscard]] FunctionDecl *callee() const { return callee_; }
  [[nodiscard]] const std::vector<Expr *> &args() const { return args_; }

private:
  std::string calleeName_;
  FunctionDecl *callee_;
  std::vector<Expr *> args_;
};

class UnaryExpr final : public Expr {
public:
  UnaryExpr(UnaryOp op, Expr *operand, const Type *type)
      : Expr(ExprKind::Unary, type), op_(op), operand_(operand) {}
  [[nodiscard]] UnaryOp op() const { return op_; }
  [[nodiscard]] Expr *operand() const { return operand_; }

private:
  UnaryOp op_;
  Expr *operand_;
};

class BinaryExpr final : public Expr {
public:
  BinaryExpr(BinaryOp op, Expr *lhs, Expr *rhs, const Type *type)
      : Expr(ExprKind::Binary, type), op_(op), lhs_(lhs), rhs_(rhs) {}
  [[nodiscard]] BinaryOp op() const { return op_; }
  [[nodiscard]] Expr *lhs() const { return lhs_; }
  [[nodiscard]] Expr *rhs() const { return rhs_; }

private:
  BinaryOp op_;
  Expr *lhs_;
  Expr *rhs_;
};

class ConditionalExpr final : public Expr {
public:
  ConditionalExpr(Expr *cond, Expr *trueExpr, Expr *falseExpr,
                  const Type *type)
      : Expr(ExprKind::Conditional, type), cond_(cond), trueExpr_(trueExpr),
        falseExpr_(falseExpr) {}
  [[nodiscard]] Expr *cond() const { return cond_; }
  [[nodiscard]] Expr *trueExpr() const { return trueExpr_; }
  [[nodiscard]] Expr *falseExpr() const { return falseExpr_; }

private:
  Expr *cond_;
  Expr *trueExpr_;
  Expr *falseExpr_;
};

class CastExpr final : public Expr {
public:
  CastExpr(const Type *target, Expr *operand)
      : Expr(ExprKind::Cast, target), operand_(operand) {}
  [[nodiscard]] Expr *operand() const { return operand_; }

private:
  Expr *operand_;
};

class ParenExpr final : public Expr {
public:
  explicit ParenExpr(Expr *inner)
      : Expr(ExprKind::Paren, inner->type()), inner_(inner) {}
  [[nodiscard]] Expr *inner() const { return inner_; }

private:
  Expr *inner_;
};

class InitListExpr final : public Expr {
public:
  InitListExpr(std::vector<Expr *> inits, const Type *type)
      : Expr(ExprKind::InitList, type), inits_(std::move(inits)) {}
  [[nodiscard]] const std::vector<Expr *> &inits() const { return inits_; }

private:
  std::vector<Expr *> inits_;
};

class SizeofExpr final : public Expr {
public:
  SizeofExpr(const Type *argument, const Type *type)
      : Expr(ExprKind::Sizeof, type), argument_(argument) {}
  /// The type whose size is queried (sizeof(expr) is normalized to the
  /// expression's type at parse time).
  [[nodiscard]] const Type *argument() const { return argument_; }

private:
  const Type *argument_;
};

/// Strips ParenExpr and CastExpr wrappers.
[[nodiscard]] const Expr *ignoreParensAndCasts(const Expr *expr);
[[nodiscard]] Expr *ignoreParensAndCasts(Expr *expr);

/// If `expr` (after stripping) refers to a variable, returns it.
[[nodiscard]] VarDecl *referencedVar(const Expr *expr);

// ---------------------------------------------------------------------------
// OpenMP directives
// ---------------------------------------------------------------------------

/// Directive kinds recognized by the front end. The offload-kernel subset
/// matches Table I of the paper exactly.
enum class OmpDirectiveKind {
  Target,
  TargetParallel,
  TargetParallelFor,
  TargetParallelForSimd,
  TargetParallelLoop,
  TargetSimd,
  TargetTeams,
  TargetTeamsDistribute,
  TargetTeamsDistributeParallelFor,
  TargetTeamsDistributeParallelForSimd,
  TargetTeamsDistributeSimd,
  TargetTeamsLoop,
  TargetData,
  TargetEnterData,
  TargetExitData,
  TargetUpdate,
  ParallelFor, ///< Host-side `omp parallel for` (not an offload kernel).
};

/// True for every directive in Table I (all target directives except
/// target (enter/exit) data and target update).
[[nodiscard]] bool isOffloadKernelDirective(OmpDirectiveKind kind);
[[nodiscard]] const char *directiveSpelling(OmpDirectiveKind kind);

enum class OmpClauseKind {
  Map,
  FirstPrivate,
  Private,
  Shared,
  Reduction,
  NumTeams,
  ThreadLimit,
  NumThreads,
  Collapse,
  UpdateTo,
  UpdateFrom,
  Device,
  If,
  Schedule,
  DefaultMap,
  Simdlen,
  Nowait,
};

enum class OmpMapType { To, From, ToFrom, Alloc, Release, Delete };

[[nodiscard]] const char *mapTypeSpelling(OmpMapType type);

/// One dimension of an OpenMP array section `[lower : length]`. A plain
/// subscript `[i]` is a section with length == nullptr.
struct OmpArraySectionDim {
  Expr *lower = nullptr;
  Expr *length = nullptr;
};

/// A list item in a map/update/firstprivate clause.
struct OmpObject {
  VarDecl *var = nullptr;
  std::string spelling; ///< Original item text, e.g. "a[0:n]".
  std::vector<OmpArraySectionDim> sections;
  SourceRange range;
};

/// Map-type modifiers on a map clause (OpenMP 5.2). Execution under the
/// simulated runtime needs no special handling: `present` data is already
/// reference-counted (no copy on re-map), and the planner never emits
/// `always`/`close`; they are recorded for fidelity.
struct OmpMapModifiers {
  bool always = false;
  bool present = false;
  bool close = false;
};

struct OmpClause {
  OmpClauseKind kind = OmpClauseKind::Map;
  OmpMapType mapType = OmpMapType::ToFrom;
  OmpMapModifiers modifiers;
  std::vector<OmpObject> objects;
  Expr *value = nullptr;        ///< num_teams(...), collapse(...), etc.
  std::string reductionOp;      ///< "+", "max", ... for reduction clauses.
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  Compound,
  Decl,
  Expr,
  If,
  For,
  While,
  Do,
  Switch,
  Case,
  Default,
  Break,
  Continue,
  Return,
  Null,
  OmpDirective,
};

class Stmt {
public:
  virtual ~Stmt() = default;
  [[nodiscard]] StmtKind kind() const { return kind_; }
  [[nodiscard]] SourceRange range() const { return range_; }
  void setRange(SourceRange range) { range_ = range; }

protected:
  explicit Stmt(StmtKind kind) : kind_(kind) {}

private:
  StmtKind kind_;
  SourceRange range_;
};

class CompoundStmt final : public Stmt {
public:
  explicit CompoundStmt(std::vector<Stmt *> body)
      : Stmt(StmtKind::Compound), body_(std::move(body)) {}
  [[nodiscard]] const std::vector<Stmt *> &body() const { return body_; }

private:
  std::vector<Stmt *> body_;
};

class DeclStmt final : public Stmt {
public:
  explicit DeclStmt(std::vector<VarDecl *> decls)
      : Stmt(StmtKind::Decl), decls_(std::move(decls)) {}
  [[nodiscard]] const std::vector<VarDecl *> &decls() const { return decls_; }

private:
  std::vector<VarDecl *> decls_;
};

class ExprStmt final : public Stmt {
public:
  explicit ExprStmt(Expr *expr) : Stmt(StmtKind::Expr), expr_(expr) {}
  [[nodiscard]] Expr *expr() const { return expr_; }

private:
  Expr *expr_;
};

class IfStmt final : public Stmt {
public:
  IfStmt(Expr *cond, Stmt *thenStmt, Stmt *elseStmt)
      : Stmt(StmtKind::If), cond_(cond), then_(thenStmt), else_(elseStmt) {}
  [[nodiscard]] Expr *cond() const { return cond_; }
  [[nodiscard]] Stmt *thenStmt() const { return then_; }
  [[nodiscard]] Stmt *elseStmt() const { return else_; }

private:
  Expr *cond_;
  Stmt *then_;
  Stmt *else_;
};

class ForStmt final : public Stmt {
public:
  ForStmt(Stmt *init, Expr *cond, Expr *inc, Stmt *body)
      : Stmt(StmtKind::For), init_(init), cond_(cond), inc_(inc),
        body_(body) {}
  [[nodiscard]] Stmt *init() const { return init_; }
  [[nodiscard]] Expr *cond() const { return cond_; }
  [[nodiscard]] Expr *inc() const { return inc_; }
  [[nodiscard]] Stmt *body() const { return body_; }

private:
  Stmt *init_;
  Expr *cond_;
  Expr *inc_;
  Stmt *body_;
};

class WhileStmt final : public Stmt {
public:
  WhileStmt(Expr *cond, Stmt *body)
      : Stmt(StmtKind::While), cond_(cond), body_(body) {}
  [[nodiscard]] Expr *cond() const { return cond_; }
  [[nodiscard]] Stmt *body() const { return body_; }

private:
  Expr *cond_;
  Stmt *body_;
};

class DoStmt final : public Stmt {
public:
  DoStmt(Stmt *body, Expr *cond)
      : Stmt(StmtKind::Do), body_(body), cond_(cond) {}
  [[nodiscard]] Stmt *body() const { return body_; }
  [[nodiscard]] Expr *cond() const { return cond_; }

private:
  Stmt *body_;
  Expr *cond_;
};

class SwitchStmt final : public Stmt {
public:
  SwitchStmt(Expr *cond, Stmt *body)
      : Stmt(StmtKind::Switch), cond_(cond), body_(body) {}
  [[nodiscard]] Expr *cond() const { return cond_; }
  [[nodiscard]] Stmt *body() const { return body_; }

private:
  Expr *cond_;
  Stmt *body_;
};

class CaseStmt final : public Stmt {
public:
  CaseStmt(Expr *value, Stmt *sub)
      : Stmt(StmtKind::Case), value_(value), sub_(sub) {}
  [[nodiscard]] Expr *value() const { return value_; }
  [[nodiscard]] Stmt *sub() const { return sub_; }

private:
  Expr *value_;
  Stmt *sub_;
};

class DefaultStmt final : public Stmt {
public:
  explicit DefaultStmt(Stmt *sub) : Stmt(StmtKind::Default), sub_(sub) {}
  [[nodiscard]] Stmt *sub() const { return sub_; }

private:
  Stmt *sub_;
};

class BreakStmt final : public Stmt {
public:
  BreakStmt() : Stmt(StmtKind::Break) {}
};

class ContinueStmt final : public Stmt {
public:
  ContinueStmt() : Stmt(StmtKind::Continue) {}
};

class ReturnStmt final : public Stmt {
public:
  explicit ReturnStmt(Expr *value) : Stmt(StmtKind::Return), value_(value) {}
  [[nodiscard]] Expr *value() const { return value_; }

private:
  Expr *value_;
};

class NullStmt final : public Stmt {
public:
  NullStmt() : Stmt(StmtKind::Null) {}
};

/// An OpenMP directive plus (when present) the statement it is associated
/// with. `pragmaRange` spans the pragma line itself so the rewriter can
/// append clauses to it.
class OmpDirectiveStmt final : public Stmt {
public:
  OmpDirectiveStmt(OmpDirectiveKind directive, std::vector<OmpClause> clauses,
                   Stmt *associated, SourceRange pragmaRange)
      : Stmt(StmtKind::OmpDirective), directive_(directive),
        clauses_(std::move(clauses)), associated_(associated),
        pragmaRange_(pragmaRange) {}

  [[nodiscard]] OmpDirectiveKind directive() const { return directive_; }
  [[nodiscard]] const std::vector<OmpClause> &clauses() const {
    return clauses_;
  }
  [[nodiscard]] std::vector<OmpClause> &clauses() { return clauses_; }
  /// Null for standalone directives (target update, enter/exit data).
  [[nodiscard]] Stmt *associated() const { return associated_; }
  [[nodiscard]] SourceRange pragmaRange() const { return pragmaRange_; }
  [[nodiscard]] bool isOffloadKernel() const {
    return isOffloadKernelDirective(directive_);
  }

private:
  OmpDirectiveKind directive_;
  std::vector<OmpClause> clauses_;
  Stmt *associated_;
  SourceRange pragmaRange_;
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

class VarDecl {
public:
  VarDecl(std::string name, const Type *type)
      : name_(std::move(name)), type_(type) {}

  [[nodiscard]] const std::string &name() const { return name_; }
  [[nodiscard]] const Type *type() const { return type_; }
  [[nodiscard]] Expr *init() const { return init_; }
  [[nodiscard]] bool isGlobal() const { return isGlobal_; }
  [[nodiscard]] bool isParam() const { return isParam_; }
  [[nodiscard]] bool isConst() const { return isConst_; }
  [[nodiscard]] bool isStatic() const { return isStatic_; }
  /// Declared `extern`: a reference to a definition in another translation
  /// unit (no storage here). The Project layer links such globals by name.
  [[nodiscard]] bool isExtern() const { return isExtern_; }
  [[nodiscard]] SourceRange range() const { return range_; }
  /// Range of the whole declaration statement; used for the paper's
  /// "declaration must precede the target data region" check.
  [[nodiscard]] SourceRange declStmtRange() const { return declStmtRange_; }

  void setInit(Expr *init) { init_ = init; }
  /// Linkage unification: a definition following an `extern` declaration
  /// may carry more type information (e.g. the array extent).
  void setType(const Type *type) { type_ = type; }
  void setGlobal(bool value) { isGlobal_ = value; }
  void setParam(bool value) { isParam_ = value; }
  void setConst(bool value) { isConst_ = value; }
  void setStatic(bool value) { isStatic_ = value; }
  void setExtern(bool value) { isExtern_ = value; }
  void setRange(SourceRange range) { range_ = range; }
  void setDeclStmtRange(SourceRange range) { declStmtRange_ = range; }

private:
  std::string name_;
  const Type *type_;
  Expr *init_ = nullptr;
  bool isGlobal_ = false;
  bool isParam_ = false;
  bool isConst_ = false;
  bool isStatic_ = false;
  bool isExtern_ = false;
  SourceRange range_;
  SourceRange declStmtRange_;
};

/// Deterministic variable ordering: by declaration source offset, then
/// name. Use this wherever a pointer-keyed container's iteration order
/// would otherwise leak heap layout into tool output (map clause order must
/// be identical across Sessions, processes and threads).
[[nodiscard]] bool varDeclBefore(const VarDecl *a, const VarDecl *b);

struct FieldDecl {
  std::string name;
  const Type *type = nullptr;
  std::uint64_t offset = 0; ///< Packed byte offset within the record.
};

class RecordDecl {
public:
  explicit RecordDecl(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string &name() const { return name_; }
  [[nodiscard]] const std::vector<FieldDecl> &fields() const {
    return fields_;
  }
  [[nodiscard]] std::uint64_t sizeInBytes() const { return size_; }

  void addField(std::string name, const Type *type) {
    fields_.push_back(FieldDecl{std::move(name), type, size_});
    size_ += type->sizeInBytes();
  }
  [[nodiscard]] const FieldDecl *findField(const std::string &name) const {
    for (const FieldDecl &field : fields_)
      if (field.name == name)
        return &field;
    return nullptr;
  }

private:
  std::string name_;
  std::vector<FieldDecl> fields_;
  std::uint64_t size_ = 0;
};

class FunctionDecl {
public:
  FunctionDecl(std::string name, const Type *returnType,
               std::vector<VarDecl *> params)
      : name_(std::move(name)), returnType_(returnType),
        params_(std::move(params)) {}

  [[nodiscard]] const std::string &name() const { return name_; }
  [[nodiscard]] const Type *returnType() const { return returnType_; }
  [[nodiscard]] const std::vector<VarDecl *> &params() const {
    return params_;
  }
  [[nodiscard]] CompoundStmt *body() const { return body_; }
  [[nodiscard]] bool isDefined() const { return body_ != nullptr; }
  /// Declared `static`: internal linkage — invisible to other TUs, so the
  /// Project link must not unify it with same-named functions elsewhere.
  [[nodiscard]] bool isStatic() const { return isStatic_; }
  [[nodiscard]] SourceRange range() const { return range_; }

  void setBody(CompoundStmt *body) { body_ = body; }
  void setStatic(bool value) { isStatic_ = value; }
  void setRange(SourceRange range) { range_ = range; }
  /// Rebinds parameters when a definition follows a prototype, so analyses
  /// see the VarDecls the body actually references.
  void setParams(std::vector<VarDecl *> params) { params_ = std::move(params); }

private:
  std::string name_;
  const Type *returnType_;
  std::vector<VarDecl *> params_;
  CompoundStmt *body_ = nullptr;
  bool isStatic_ = false;
  SourceRange range_;
};

// ---------------------------------------------------------------------------
// Translation unit & context
// ---------------------------------------------------------------------------

struct TranslationUnit {
  std::vector<VarDecl *> globals;
  std::vector<FunctionDecl *> functions;
  std::vector<RecordDecl *> records;

  [[nodiscard]] FunctionDecl *findFunction(const std::string &name) const {
    for (FunctionDecl *fn : functions)
      if (fn->name() == name)
        return fn;
    return nullptr;
  }
};

/// Owns every AST node and declaration for one parse via a per-TU bump
/// arena (support/arena.hpp): nodes are raw non-owning pointers into the
/// arena and die wholesale with the context — no per-node unique_ptr
/// bookkeeping, no individual frees at Session teardown. Code that must
/// hold nodes across stages keeps the ASTContext alive (the Session's
/// shared_ptr; see README "Memory model").
class ASTContext {
public:
  ASTContext() = default;
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  [[nodiscard]] TypeContext &types() { return types_; }
  [[nodiscard]] const TypeContext &types() const { return types_; }
  [[nodiscard]] TranslationUnit &unit() { return unit_; }
  [[nodiscard]] const TranslationUnit &unit() const { return unit_; }
  [[nodiscard]] const BumpArena &arena() const { return arena_; }

  template <typename T, typename... Args> T *createExpr(Args &&...args) {
    static_assert(std::is_base_of_v<Expr, T>);
    return arena_.create<T>(std::forward<Args>(args)...);
  }
  template <typename T, typename... Args> T *createStmt(Args &&...args) {
    static_assert(std::is_base_of_v<Stmt, T>);
    return arena_.create<T>(std::forward<Args>(args)...);
  }
  VarDecl *createVar(std::string name, const Type *type) {
    return arena_.create<VarDecl>(std::move(name), type);
  }
  FunctionDecl *createFunction(std::string name, const Type *returnType,
                               std::vector<VarDecl *> params) {
    return arena_.create<FunctionDecl>(std::move(name), returnType,
                                       std::move(params));
  }
  RecordDecl *createRecord(std::string name) {
    return arena_.create<RecordDecl>(std::move(name));
  }

private:
  TypeContext types_;
  TranslationUnit unit_;
  /// Declared after unit_ so nodes outlive the unit's pointer vectors
  /// during destruction.
  BumpArena arena_;
};

} // namespace ompdart
