#include "frontend/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace ompdart {

namespace {

/// Keyword lookup without constructing a lookup key: a switch on the first
/// character plus direct string_view compares (the lexer calls this once
/// per identifier-shaped token).
TokenKind keywordKind(std::string_view text) {
  switch (text[0]) {
  case 'b':
    if (text == "bool")
      return TokenKind::KwBool;
    if (text == "break")
      return TokenKind::KwBreak;
    break;
  case 'c':
    if (text == "char")
      return TokenKind::KwChar;
    if (text == "const")
      return TokenKind::KwConst;
    if (text == "continue")
      return TokenKind::KwContinue;
    if (text == "case")
      return TokenKind::KwCase;
    break;
  case 'd':
    if (text == "double")
      return TokenKind::KwDouble;
    if (text == "do")
      return TokenKind::KwDo;
    if (text == "default")
      return TokenKind::KwDefault;
    break;
  case 'e':
    if (text == "else")
      return TokenKind::KwElse;
    if (text == "extern")
      return TokenKind::KwExtern;
    break;
  case 'f':
    if (text == "for")
      return TokenKind::KwFor;
    if (text == "float")
      return TokenKind::KwFloat;
    break;
  case 'i':
    if (text == "int")
      return TokenKind::KwInt;
    if (text == "if")
      return TokenKind::KwIf;
    break;
  case 'l':
    if (text == "long")
      return TokenKind::KwLong;
    break;
  case 'r':
    if (text == "return")
      return TokenKind::KwReturn;
    break;
  case 's':
    if (text == "static")
      return TokenKind::KwStatic;
    if (text == "struct")
      return TokenKind::KwStruct;
    if (text == "sizeof")
      return TokenKind::KwSizeof;
    if (text == "short")
      return TokenKind::KwShort;
    if (text == "signed")
      return TokenKind::KwSigned;
    if (text == "switch")
      return TokenKind::KwSwitch;
    break;
  case 't':
    if (text == "typedef")
      return TokenKind::KwTypedef;
    break;
  case 'u':
    if (text == "unsigned")
      return TokenKind::KwUnsigned;
    break;
  case 'v':
    if (text == "void")
      return TokenKind::KwVoid;
    break;
  case 'w':
    if (text == "while")
      return TokenKind::KwWhile;
    break;
  default:
    break;
  }
  return TokenKind::Identifier;
}

constexpr unsigned kMaxExpansionDepth = 16;

} // namespace

const char *tokenKindName(TokenKind kind) {
  switch (kind) {
  case TokenKind::Eof:
    return "eof";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::FloatLiteral:
    return "float literal";
  case TokenKind::CharLiteral:
    return "char literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::PragmaOmp:
    return "#pragma omp";
  case TokenKind::PragmaEnd:
    return "end of pragma";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  default:
    return "token";
  }
}

Lexer::Lexer(const SourceManager &sourceManager, DiagnosticEngine &diags)
    : sourceManager_(sourceManager), diags_(diags), text_(sourceManager.text()),
      cursor_(sourceManager) {}

char Lexer::peek(std::size_t lookahead) const {
  const std::size_t index = pos_ + lookahead;
  return index < text_.size() ? text_[index] : '\0';
}

char Lexer::advance() {
  const char c = text_[pos_++];
  // "Line start" tolerates leading horizontal whitespace so that indented
  // `#pragma` / `#define` lines are still recognized as directives.
  atLineStart_ = (c == '\n') || (atLineStart_ && (c == ' ' || c == '\t'));
  return c;
}

Token Lexer::makeToken(TokenKind kind, std::size_t beginOffset,
                       std::string text) {
  Token token;
  token.kind = kind;
  token.text = std::move(text);
  // Token begin offsets only move forward, so the cursor answers in O(1).
  token.location = cursor_.at(beginOffset);
  token.endOffset = pos_;
  return token;
}

Token Lexer::next() {
  unsigned splices = 0;
  while (true) {
    Token token;
    if (!pending_.empty()) {
      token = pending_.front();
      pending_.pop_front();
    } else {
      token = lexToken();
    }
    if (token.kind != TokenKind::Identifier)
      return token;
    const auto it = macros_.find(token.text);
    if (it == macros_.end())
      return token;
    if (++splices > kMaxExpansionDepth) {
      diags_.error(token.location,
                   "macro expansion too deep for '" + token.text + "'");
      return token;
    }
    // Splice replacement tokens, re-anchored to the use site so downstream
    // source edits refer to real text. Pending tokens re-enter this check,
    // which expands nested macros; the splice cap breaks self-reference.
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      Token copy = *rit;
      copy.location = token.location;
      copy.endOffset = token.endOffset;
      pending_.push_front(std::move(copy));
    }
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> tokens;
  // ~6 source bytes per token is a close overestimate for the C subset;
  // one up-front reservation avoids the doubling reallocations that showed
  // up in parse-stage profiles.
  tokens.reserve(text_.size() / 6 + 16);
  while (true) {
    Token token = next();
    const bool isEof = token.kind == TokenKind::Eof;
    tokens.push_back(std::move(token));
    if (isEof)
      break;
  }
  return tokens;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    const char c = peek();
    if (c == '\\' && peek(1) == '\n') {
      // Line continuation: consume both, do not end a pragma.
      pos_ += 2;
      continue;
    }
    if (c == '\n') {
      if (inPragma_)
        return; // Significant: terminates the pragma.
      advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      pos_ += 2;
      while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (!atEnd())
        pos_ += 2;
      continue;
    }
    return;
  }
}

Token Lexer::lexToken() {
  while (true) {
    skipWhitespaceAndComments();
    if (inPragma_ && (atEnd() || peek() == '\n')) {
      inPragma_ = false;
      const std::size_t begin = pos_;
      if (!atEnd())
        advance();
      return makeToken(TokenKind::PragmaEnd, begin, "");
    }
    if (atEnd())
      return makeToken(TokenKind::Eof, pos_, "");
    if (peek() == '#' && atLineStart_ && !inPragma_) {
      const std::size_t hashPos = pos_;
      handleDirective();
      if (inPragma_) {
        Token token = makeToken(TokenKind::PragmaOmp, hashPos, "#pragma omp");
        return token;
      }
      continue;
    }
    break;
  }

  const std::size_t begin = pos_;
  const char c = peek();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
    return lexIdentifierOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return lexNumber();
  if (c == '\'')
    return lexCharLiteral();
  if (c == '"')
    return lexStringLiteral();

  advance();
  switch (c) {
  case '(':
    return makeToken(TokenKind::LParen, begin, "(");
  case ')':
    return makeToken(TokenKind::RParen, begin, ")");
  case '{':
    return makeToken(TokenKind::LBrace, begin, "{");
  case '}':
    return makeToken(TokenKind::RBrace, begin, "}");
  case '[':
    return makeToken(TokenKind::LBracket, begin, "[");
  case ']':
    return makeToken(TokenKind::RBracket, begin, "]");
  case ';':
    return makeToken(TokenKind::Semi, begin, ";");
  case ',':
    return makeToken(TokenKind::Comma, begin, ",");
  case '.':
    return makeToken(TokenKind::Dot, begin, ".");
  case '?':
    return makeToken(TokenKind::Question, begin, "?");
  case ':':
    return makeToken(TokenKind::Colon, begin, ":");
  case '~':
    return makeToken(TokenKind::Tilde, begin, "~");
  case '+':
    if (peek() == '+') {
      advance();
      return makeToken(TokenKind::PlusPlus, begin, "++");
    }
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::PlusEqual, begin, "+=");
    }
    return makeToken(TokenKind::Plus, begin, "+");
  case '-':
    if (peek() == '-') {
      advance();
      return makeToken(TokenKind::MinusMinus, begin, "--");
    }
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::MinusEqual, begin, "-=");
    }
    if (peek() == '>') {
      advance();
      return makeToken(TokenKind::Arrow, begin, "->");
    }
    return makeToken(TokenKind::Minus, begin, "-");
  case '*':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::StarEqual, begin, "*=");
    }
    return makeToken(TokenKind::Star, begin, "*");
  case '/':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::SlashEqual, begin, "/=");
    }
    return makeToken(TokenKind::Slash, begin, "/");
  case '%':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::PercentEqual, begin, "%=");
    }
    return makeToken(TokenKind::Percent, begin, "%");
  case '&':
    if (peek() == '&') {
      advance();
      return makeToken(TokenKind::AmpAmp, begin, "&&");
    }
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::AmpEqual, begin, "&=");
    }
    return makeToken(TokenKind::Amp, begin, "&");
  case '|':
    if (peek() == '|') {
      advance();
      return makeToken(TokenKind::PipePipe, begin, "||");
    }
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::PipeEqual, begin, "|=");
    }
    return makeToken(TokenKind::Pipe, begin, "|");
  case '^':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::CaretEqual, begin, "^=");
    }
    return makeToken(TokenKind::Caret, begin, "^");
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::ExclaimEqual, begin, "!=");
    }
    return makeToken(TokenKind::Exclaim, begin, "!");
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqualEqual, begin, "==");
    }
    return makeToken(TokenKind::Equal, begin, "=");
  case '<':
    if (peek() == '<') {
      advance();
      if (peek() == '=') {
        advance();
        return makeToken(TokenKind::LessLessEqual, begin, "<<=");
      }
      return makeToken(TokenKind::LessLess, begin, "<<");
    }
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEqual, begin, "<=");
    }
    return makeToken(TokenKind::Less, begin, "<");
  case '>':
    if (peek() == '>') {
      advance();
      if (peek() == '=') {
        advance();
        return makeToken(TokenKind::GreaterGreaterEqual, begin, ">>=");
      }
      return makeToken(TokenKind::GreaterGreater, begin, ">>");
    }
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEqual, begin, ">=");
    }
    return makeToken(TokenKind::Greater, begin, ">");
  default:
    diags_.error(sourceManager_.locationFor(begin),
                 std::string("unexpected character '") + c + "'");
    return makeToken(TokenKind::Unknown, begin, std::string(1, c));
  }
}

Token Lexer::lexIdentifierOrKeyword() {
  const std::size_t begin = pos_;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    ++pos_;
  atLineStart_ = false; // identifier characters are never line whitespace
  const std::string_view view(text_.data() + begin, pos_ - begin);
  return makeToken(keywordKind(view), begin, std::string(view));
}

Token Lexer::lexNumber() {
  // The token text is always the raw source slice, so this scans by
  // position and materializes one string at the end.
  const std::size_t begin = pos_;
  bool isFloat = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    pos_ += 2;
    while (!atEnd() && std::isxdigit(static_cast<unsigned char>(peek())))
      ++pos_;
  } else {
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      ++pos_;
    if (peek() == '.') {
      isFloat = true;
      ++pos_;
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      const char sign = peek(1);
      if (std::isdigit(static_cast<unsigned char>(sign)) ||
          ((sign == '+' || sign == '-') &&
           std::isdigit(static_cast<unsigned char>(peek(2))))) {
        isFloat = true;
        ++pos_;
        if (peek() == '+' || peek() == '-')
          ++pos_;
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
          ++pos_;
      }
    }
  }
  // Suffixes (f, F, u, U, l, L in any combination) are consumed but only 'f'
  // affects the token kind.
  while (peek() == 'f' || peek() == 'F' || peek() == 'u' || peek() == 'U' ||
         peek() == 'l' || peek() == 'L') {
    if (peek() == 'f' || peek() == 'F')
      isFloat = true;
    ++pos_;
  }
  atLineStart_ = false; // number characters are never line whitespace
  return makeToken(isFloat ? TokenKind::FloatLiteral : TokenKind::IntLiteral,
                   begin, std::string(text_.data() + begin, pos_ - begin));
}

Token Lexer::lexCharLiteral() {
  const std::size_t begin = pos_;
  advance(); // opening quote
  std::string text;
  while (!atEnd() && peek() != '\'') {
    if (peek() == '\\') {
      advance();
      const char esc = advance();
      switch (esc) {
      case 'n':
        text.push_back('\n');
        break;
      case 't':
        text.push_back('\t');
        break;
      case '0':
        text.push_back('\0');
        break;
      case '\\':
        text.push_back('\\');
        break;
      case '\'':
        text.push_back('\'');
        break;
      default:
        text.push_back(esc);
        break;
      }
    } else {
      text.push_back(advance());
    }
  }
  if (!atEnd())
    advance(); // closing quote
  else
    diags_.error(sourceManager_.locationFor(begin),
                 "unterminated character literal");
  return makeToken(TokenKind::CharLiteral, begin, std::move(text));
}

Token Lexer::lexStringLiteral() {
  const std::size_t begin = pos_;
  advance(); // opening quote
  std::string text;
  while (!atEnd() && peek() != '"') {
    if (peek() == '\\') {
      advance();
      const char esc = advance();
      switch (esc) {
      case 'n':
        text.push_back('\n');
        break;
      case 't':
        text.push_back('\t');
        break;
      case '"':
        text.push_back('"');
        break;
      case '\\':
        text.push_back('\\');
        break;
      default:
        text.push_back(esc);
        break;
      }
    } else {
      text.push_back(advance());
    }
  }
  if (!atEnd())
    advance(); // closing quote
  else
    diags_.error(sourceManager_.locationFor(begin),
                 "unterminated string literal");
  return makeToken(TokenKind::StringLiteral, begin, std::move(text));
}

void Lexer::handleDirective() {
  const std::size_t hashPos = pos_;
  advance(); // '#'
  while (peek() == ' ' || peek() == '\t')
    advance();
  std::string word;
  while (std::isalpha(static_cast<unsigned char>(peek())))
    word.push_back(advance());

  if (word == "pragma") {
    while (peek() == ' ' || peek() == '\t')
      advance();
    std::string pragmaName;
    const std::size_t nameBegin = pos_;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      pragmaName.push_back(advance());
    if (pragmaName == "omp") {
      inPragma_ = true;
      return;
    }
    (void)nameBegin;
    skipToEndOfLine(); // Non-OpenMP pragmas are irrelevant to the analysis.
    return;
  }
  if (word == "define") {
    handleDefine();
    return;
  }
  if (word == "include" || word == "ifdef" || word == "ifndef" ||
      word == "endif" || word == "undef" || word == "if" || word == "else" ||
      word == "elif" || word == "error") {
    skipToEndOfLine();
    return;
  }
  diags_.warning(sourceManager_.locationFor(hashPos),
                 "ignoring unknown preprocessor directive '#" + word + "'");
  skipToEndOfLine();
}

void Lexer::handleDefine() {
  while (peek() == ' ' || peek() == '\t')
    advance();
  std::string name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    name.push_back(advance());
  if (name.empty()) {
    skipToEndOfLine();
    return;
  }
  if (peek() == '(') {
    // Function-like macros are out of scope for the subset; skip them whole.
    diags_.warning(sourceManager_.locationFor(pos_),
                   "function-like macro '" + name + "' is ignored");
    skipToEndOfLine();
    return;
  }
  // Lex replacement tokens up to end of line by bracketing with pragma-style
  // line significance.
  std::vector<Token> replacement;
  while (true) {
    while (peek() == ' ' || peek() == '\t')
      advance();
    if (peek() == '\\' && peek(1) == '\n') {
      pos_ += 2;
      continue;
    }
    if (atEnd() || peek() == '\n')
      break;
    if (peek() == '/' && peek(1) == '/') {
      skipToEndOfLine();
      break;
    }
    Token token = lexToken();
    if (token.kind == TokenKind::Eof || token.kind == TokenKind::Unknown)
      break;
    replacement.push_back(std::move(token));
  }
  macros_[name] = std::move(replacement);
}

void Lexer::skipToEndOfLine() {
  while (!atEnd() && peek() != '\n') {
    if (peek() == '\\' && peek(1) == '\n')
      pos_ += 2;
    else
      advance();
  }
}

} // namespace ompdart
