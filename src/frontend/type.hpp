// Minimal C type system: builtins, pointers, sized arrays, and packed
// structs. Sizes feed the transfer ledger (bytes moved per map/update), so
// sizeOf must agree between the static analysis and the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace ompdart {

class RecordDecl;

enum class TypeKind { Builtin, Pointer, Array, Record };

enum class BuiltinKind {
  Void,
  Bool,
  Char,
  Short,
  Int,
  UInt,
  Long,
  ULong,
  Float,
  Double,
};

class Type {
public:
  virtual ~Type() = default;

  [[nodiscard]] TypeKind kind() const { return kind_; }
  [[nodiscard]] bool isBuiltin() const { return kind_ == TypeKind::Builtin; }
  [[nodiscard]] bool isPointer() const { return kind_ == TypeKind::Pointer; }
  [[nodiscard]] bool isArray() const { return kind_ == TypeKind::Array; }
  [[nodiscard]] bool isRecord() const { return kind_ == TypeKind::Record; }

  /// A scalar for mapping purposes: a non-aggregate, non-pointer value.
  [[nodiscard]] bool isScalar() const { return isBuiltin(); }
  [[nodiscard]] bool isFloatingPoint() const;
  [[nodiscard]] bool isInteger() const;
  [[nodiscard]] bool isVoid() const;

  /// Size in bytes (structs are packed; arrays of unknown extent report the
  /// element size). Used by both the analysis and the simulated runtime.
  [[nodiscard]] std::uint64_t sizeInBytes() const;

  /// C-like spelling, e.g. "double *", "int [256]", "struct atom".
  [[nodiscard]] std::string spelling() const;

protected:
  explicit Type(TypeKind kind) : kind_(kind) {}

private:
  TypeKind kind_;
};

class BuiltinType final : public Type {
public:
  explicit BuiltinType(BuiltinKind builtin)
      : Type(TypeKind::Builtin), builtin_(builtin) {}

  [[nodiscard]] BuiltinKind builtinKind() const { return builtin_; }

private:
  BuiltinKind builtin_;
};

class PointerType final : public Type {
public:
  PointerType(const Type *pointee, bool pointeeConst)
      : Type(TypeKind::Pointer), pointee_(pointee),
        pointeeConst_(pointeeConst) {}

  [[nodiscard]] const Type *pointee() const { return pointee_; }
  /// True for `const T *`: the paper treats such parameters as read-only.
  [[nodiscard]] bool isPointeeConst() const { return pointeeConst_; }

private:
  const Type *pointee_;
  bool pointeeConst_;
};

class ArrayType final : public Type {
public:
  ArrayType(const Type *element, std::optional<std::uint64_t> extent,
            std::string extentSpelling)
      : Type(TypeKind::Array), element_(element), extent_(extent),
        extentSpelling_(std::move(extentSpelling)) {}

  [[nodiscard]] const Type *element() const { return element_; }
  /// Number of elements when known at parse time.
  [[nodiscard]] std::optional<std::uint64_t> extent() const { return extent_; }
  /// Original spelling of the extent expression (kept for emitting array
  /// sections in generated map clauses).
  [[nodiscard]] const std::string &extentSpelling() const {
    return extentSpelling_;
  }

private:
  const Type *element_;
  std::optional<std::uint64_t> extent_;
  std::string extentSpelling_;
};

class RecordType final : public Type {
public:
  explicit RecordType(const RecordDecl *decl)
      : Type(TypeKind::Record), decl_(decl) {}

  [[nodiscard]] const RecordDecl *decl() const { return decl_; }

private:
  const RecordDecl *decl_;
};

/// Owns all Type instances for one translation unit, uniquing builtins.
class TypeContext {
public:
  TypeContext();

  [[nodiscard]] const BuiltinType *builtin(BuiltinKind kind) const;
  [[nodiscard]] const BuiltinType *voidType() const {
    return builtin(BuiltinKind::Void);
  }
  [[nodiscard]] const BuiltinType *intType() const {
    return builtin(BuiltinKind::Int);
  }
  [[nodiscard]] const BuiltinType *doubleType() const {
    return builtin(BuiltinKind::Double);
  }

  const PointerType *pointerTo(const Type *pointee, bool pointeeConst = false);
  const ArrayType *arrayOf(const Type *element,
                           std::optional<std::uint64_t> extent,
                           std::string extentSpelling);
  const RecordType *recordOf(const RecordDecl *decl);

private:
  std::vector<std::unique_ptr<BuiltinType>> builtins_;
  std::vector<std::unique_ptr<Type>> owned_;
};

/// Element type reached by stripping all array/pointer layers.
[[nodiscard]] const Type *scalarBaseType(const Type *type);

} // namespace ompdart
