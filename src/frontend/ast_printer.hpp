// Debug/diagnostic AST dumping, in the spirit of `clang -ast-dump`
// (Listing 5 of the paper). Used by tests to assert parse shapes and by the
// CLI's --dump-ast mode.
#pragma once

#include "frontend/ast.hpp"

#include <string>

namespace ompdart {

/// Renders an indented tree dump of the node and its children.
[[nodiscard]] std::string dumpExpr(const Expr *expr, unsigned indent = 0);
[[nodiscard]] std::string dumpStmt(const Stmt *stmt, unsigned indent = 0);
[[nodiscard]] std::string dumpFunction(const FunctionDecl *fn);
[[nodiscard]] std::string dumpTranslationUnit(const TranslationUnit &unit);

/// Renders an expression back to compact C-like source (used when emitting
/// array sections and update clauses in generated directives).
[[nodiscard]] std::string exprToSource(const Expr *expr);

} // namespace ompdart
