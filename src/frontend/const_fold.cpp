#include "frontend/const_fold.hpp"

namespace ompdart {

std::optional<std::int64_t> foldIntegerConstant(const Expr *expr) {
  if (expr == nullptr)
    return std::nullopt;
  expr = ignoreParensAndCasts(expr);
  switch (expr->kind()) {
  case ExprKind::IntLiteral:
    return static_cast<const IntLiteralExpr *>(expr)->value();
  case ExprKind::CharLiteral:
    return static_cast<const CharLiteralExpr *>(expr)->value();
  case ExprKind::FloatLiteral: {
    // Only exactly-integral floating literals fold (e.g. `2.0 ? a : b`).
    const double value = static_cast<const FloatLiteralExpr *>(expr)->value();
    const auto truncated = static_cast<std::int64_t>(value);
    if (static_cast<double>(truncated) == value)
      return truncated;
    return std::nullopt;
  }
  case ExprKind::Sizeof: {
    const auto *sizeofExpr = static_cast<const SizeofExpr *>(expr);
    return static_cast<std::int64_t>(sizeofExpr->argument()->sizeInBytes());
  }
  case ExprKind::Unary: {
    const auto *unary = static_cast<const UnaryExpr *>(expr);
    const auto operand = foldIntegerConstant(unary->operand());
    if (!operand)
      return std::nullopt;
    switch (unary->op()) {
    case UnaryOp::Plus:
      return *operand;
    case UnaryOp::Minus:
      return -*operand;
    case UnaryOp::Not:
      return ~*operand;
    case UnaryOp::LNot:
      return *operand == 0 ? 1 : 0;
    default:
      return std::nullopt;
    }
  }
  case ExprKind::Conditional: {
    const auto *conditional = static_cast<const ConditionalExpr *>(expr);
    const auto cond = foldIntegerConstant(conditional->cond());
    if (!cond)
      return std::nullopt;
    return foldIntegerConstant(*cond != 0 ? conditional->trueExpr()
                                          : conditional->falseExpr());
  }
  case ExprKind::Binary: {
    const auto *binary = static_cast<const BinaryExpr *>(expr);
    const auto lhs = foldIntegerConstant(binary->lhs());
    const auto rhs = foldIntegerConstant(binary->rhs());
    if (!lhs || !rhs)
      return std::nullopt;
    switch (binary->op()) {
    case BinaryOp::Mul:
      return *lhs * *rhs;
    case BinaryOp::Div:
      return *rhs == 0 ? std::nullopt : std::optional(*lhs / *rhs);
    case BinaryOp::Rem:
      return *rhs == 0 ? std::nullopt : std::optional(*lhs % *rhs);
    case BinaryOp::Add:
      return *lhs + *rhs;
    case BinaryOp::Sub:
      return *lhs - *rhs;
    case BinaryOp::Shl:
      return *lhs << *rhs;
    case BinaryOp::Shr:
      return *lhs >> *rhs;
    case BinaryOp::LT:
      return *lhs < *rhs ? 1 : 0;
    case BinaryOp::GT:
      return *lhs > *rhs ? 1 : 0;
    case BinaryOp::LE:
      return *lhs <= *rhs ? 1 : 0;
    case BinaryOp::GE:
      return *lhs >= *rhs ? 1 : 0;
    case BinaryOp::EQ:
      return *lhs == *rhs ? 1 : 0;
    case BinaryOp::NE:
      return *lhs != *rhs ? 1 : 0;
    case BinaryOp::BitAnd:
      return *lhs & *rhs;
    case BinaryOp::BitXor:
      return *lhs ^ *rhs;
    case BinaryOp::BitOr:
      return *lhs | *rhs;
    case BinaryOp::LAnd:
      return (*lhs != 0 && *rhs != 0) ? 1 : 0;
    case BinaryOp::LOr:
      return (*lhs != 0 || *rhs != 0) ? 1 : 0;
    default:
      return std::nullopt;
    }
  }
  default:
    return std::nullopt;
  }
}

} // namespace ompdart
