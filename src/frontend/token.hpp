// Token definitions for the C-subset front end. The lexer produces a flat
// token stream; `#pragma omp` lines are bracketed by PragmaOmp/PragmaEnd so
// the parser can treat directives as statements with exact source extents.
#pragma once

#include "support/source_location.hpp"

#include <string>

namespace ompdart {

enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  FloatLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwVoid,
  KwBool,
  KwChar,
  KwShort,
  KwInt,
  KwLong,
  KwFloat,
  KwDouble,
  KwUnsigned,
  KwSigned,
  KwConst,
  KwStatic,
  KwExtern,
  KwStruct,
  KwTypedef,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwDo,
  KwSwitch,
  KwCase,
  KwDefault,
  KwBreak,
  KwContinue,
  KwReturn,
  KwSizeof,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Arrow,
  Question,
  Colon,

  // Operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Exclaim,
  PlusPlus,
  MinusMinus,
  Less,
  Greater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  ExclaimEqual,
  AmpAmp,
  PipePipe,
  LessLess,
  GreaterGreater,
  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  LessLessEqual,
  GreaterGreaterEqual,

  // OpenMP pragma brackets.
  PragmaOmp, ///< Marks the start of a `#pragma omp` line.
  PragmaEnd, ///< Marks the end of a pragma line (logical newline).

  Unknown,
};

[[nodiscard]] const char *tokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::Eof;
  /// The token's spelling. For macro-expanded tokens this is the expansion
  /// spelling while the range still points at the macro use site.
  std::string text;
  SourceLocation location;
  /// Offset one past the last character of the token in the original buffer.
  std::size_t endOffset = 0;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool isIdentifier(const char *name) const {
    return kind == TokenKind::Identifier && text == name;
  }
  [[nodiscard]] SourceRange range() const {
    SourceLocation end = location;
    end.offset = endOffset;
    return SourceRange(location, end);
  }
};

} // namespace ompdart
