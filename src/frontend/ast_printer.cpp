#include "frontend/ast_printer.hpp"

#include <sstream>

namespace ompdart {

namespace {

std::string pad(unsigned indent) { return std::string(indent * 2, ' '); }

} // namespace

std::string exprToSource(const Expr *expr) {
  if (expr == nullptr)
    return "";
  switch (expr->kind()) {
  case ExprKind::IntLiteral:
    return std::to_string(static_cast<const IntLiteralExpr *>(expr)->value());
  case ExprKind::FloatLiteral: {
    std::ostringstream out;
    out << static_cast<const FloatLiteralExpr *>(expr)->value();
    return out.str();
  }
  case ExprKind::CharLiteral:
    return std::string("'") +
           static_cast<const CharLiteralExpr *>(expr)->value() + "'";
  case ExprKind::StringLiteral:
    return "\"" + static_cast<const StringLiteralExpr *>(expr)->value() + "\"";
  case ExprKind::DeclRef: {
    const auto *ref = static_cast<const DeclRefExpr *>(expr);
    return ref->decl() != nullptr ? ref->decl()->name() : "?";
  }
  case ExprKind::ArraySubscript: {
    const auto *subscript = static_cast<const ArraySubscriptExpr *>(expr);
    return exprToSource(subscript->base()) + "[" +
           exprToSource(subscript->index()) + "]";
  }
  case ExprKind::Member: {
    const auto *member = static_cast<const MemberExpr *>(expr);
    return exprToSource(member->base()) + (member->isArrow() ? "->" : ".") +
           member->member();
  }
  case ExprKind::Call: {
    const auto *call = static_cast<const CallExpr *>(expr);
    std::string out = call->calleeName() + "(";
    bool first = true;
    for (const Expr *arg : call->args()) {
      if (!first)
        out += ", ";
      out += exprToSource(arg);
      first = false;
    }
    return out + ")";
  }
  case ExprKind::Unary: {
    const auto *unary = static_cast<const UnaryExpr *>(expr);
    if (unary->op() == UnaryOp::PostInc || unary->op() == UnaryOp::PostDec)
      return exprToSource(unary->operand()) + unaryOpSpelling(unary->op());
    return std::string(unaryOpSpelling(unary->op())) +
           exprToSource(unary->operand());
  }
  case ExprKind::Binary: {
    const auto *binary = static_cast<const BinaryExpr *>(expr);
    return exprToSource(binary->lhs()) + " " +
           binaryOpSpelling(binary->op()) + " " + exprToSource(binary->rhs());
  }
  case ExprKind::Conditional: {
    const auto *conditional = static_cast<const ConditionalExpr *>(expr);
    return exprToSource(conditional->cond()) + " ? " +
           exprToSource(conditional->trueExpr()) + " : " +
           exprToSource(conditional->falseExpr());
  }
  case ExprKind::Cast: {
    const auto *cast = static_cast<const CastExpr *>(expr);
    return "(" + cast->type()->spelling() + ")" +
           exprToSource(cast->operand());
  }
  case ExprKind::Paren:
    return "(" + exprToSource(static_cast<const ParenExpr *>(expr)->inner()) +
           ")";
  case ExprKind::InitList: {
    const auto *initList = static_cast<const InitListExpr *>(expr);
    std::string out = "{";
    bool first = true;
    for (const Expr *init : initList->inits()) {
      if (!first)
        out += ", ";
      out += exprToSource(init);
      first = false;
    }
    return out + "}";
  }
  case ExprKind::Sizeof:
    return "sizeof(" +
           static_cast<const SizeofExpr *>(expr)->argument()->spelling() + ")";
  }
  return "?";
}

std::string dumpExpr(const Expr *expr, unsigned indent) {
  if (expr == nullptr)
    return pad(indent) + "<null-expr>\n";
  std::string out = pad(indent);
  switch (expr->kind()) {
  case ExprKind::IntLiteral:
    out += "IntegerLiteral " +
           std::to_string(static_cast<const IntLiteralExpr *>(expr)->value()) +
           "\n";
    return out;
  case ExprKind::FloatLiteral: {
    std::ostringstream value;
    value << static_cast<const FloatLiteralExpr *>(expr)->value();
    out += "FloatingLiteral " + value.str() + "\n";
    return out;
  }
  case ExprKind::CharLiteral:
    out += "CharacterLiteral\n";
    return out;
  case ExprKind::StringLiteral:
    out += "StringLiteral\n";
    return out;
  case ExprKind::DeclRef: {
    const auto *ref = static_cast<const DeclRefExpr *>(expr);
    out += "DeclRefExpr '" +
           (ref->decl() != nullptr ? ref->decl()->name() : "?") + "'";
    if (expr->type() != nullptr)
      out += " '" + expr->type()->spelling() + "'";
    out += "\n";
    return out;
  }
  case ExprKind::ArraySubscript: {
    const auto *subscript = static_cast<const ArraySubscriptExpr *>(expr);
    out += "ArraySubscriptExpr\n";
    out += dumpExpr(subscript->base(), indent + 1);
    out += dumpExpr(subscript->index(), indent + 1);
    return out;
  }
  case ExprKind::Member: {
    const auto *member = static_cast<const MemberExpr *>(expr);
    out += std::string("MemberExpr ") + (member->isArrow() ? "->" : ".") +
           member->member() + "\n";
    out += dumpExpr(member->base(), indent + 1);
    return out;
  }
  case ExprKind::Call: {
    const auto *call = static_cast<const CallExpr *>(expr);
    out += "CallExpr '" + call->calleeName() + "'\n";
    for (const Expr *arg : call->args())
      out += dumpExpr(arg, indent + 1);
    return out;
  }
  case ExprKind::Unary: {
    const auto *unary = static_cast<const UnaryExpr *>(expr);
    out += std::string("UnaryOperator '") + unaryOpSpelling(unary->op()) +
           "'\n";
    out += dumpExpr(unary->operand(), indent + 1);
    return out;
  }
  case ExprKind::Binary: {
    const auto *binary = static_cast<const BinaryExpr *>(expr);
    out += std::string("BinaryOperator '") + binaryOpSpelling(binary->op()) +
           "'\n";
    out += dumpExpr(binary->lhs(), indent + 1);
    out += dumpExpr(binary->rhs(), indent + 1);
    return out;
  }
  case ExprKind::Conditional: {
    const auto *conditional = static_cast<const ConditionalExpr *>(expr);
    out += "ConditionalOperator\n";
    out += dumpExpr(conditional->cond(), indent + 1);
    out += dumpExpr(conditional->trueExpr(), indent + 1);
    out += dumpExpr(conditional->falseExpr(), indent + 1);
    return out;
  }
  case ExprKind::Cast: {
    const auto *cast = static_cast<const CastExpr *>(expr);
    out += "CStyleCastExpr '" + cast->type()->spelling() + "'\n";
    out += dumpExpr(cast->operand(), indent + 1);
    return out;
  }
  case ExprKind::Paren:
    out += "ParenExpr\n";
    out += dumpExpr(static_cast<const ParenExpr *>(expr)->inner(), indent + 1);
    return out;
  case ExprKind::InitList: {
    out += "InitListExpr\n";
    for (const Expr *init :
         static_cast<const InitListExpr *>(expr)->inits())
      out += dumpExpr(init, indent + 1);
    return out;
  }
  case ExprKind::Sizeof:
    out += "UnaryExprOrTypeTraitExpr sizeof\n";
    return out;
  }
  return out + "?\n";
}

std::string dumpStmt(const Stmt *stmt, unsigned indent) {
  if (stmt == nullptr)
    return pad(indent) + "<null-stmt>\n";
  std::string out = pad(indent);
  switch (stmt->kind()) {
  case StmtKind::Compound: {
    out += "CompoundStmt\n";
    for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
      out += dumpStmt(sub, indent + 1);
    return out;
  }
  case StmtKind::Decl: {
    out += "DeclStmt\n";
    for (const VarDecl *var : static_cast<const DeclStmt *>(stmt)->decls()) {
      out += pad(indent + 1) + "VarDecl '" + var->name() + "' '" +
             var->type()->spelling() + "'\n";
      if (var->init() != nullptr)
        out += dumpExpr(var->init(), indent + 2);
    }
    return out;
  }
  case StmtKind::Expr:
    out += "ExprStmt\n";
    return out + dumpExpr(static_cast<const ExprStmt *>(stmt)->expr(),
                          indent + 1);
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(stmt);
    out += "IfStmt\n";
    out += dumpExpr(ifStmt->cond(), indent + 1);
    out += dumpStmt(ifStmt->thenStmt(), indent + 1);
    if (ifStmt->elseStmt() != nullptr)
      out += dumpStmt(ifStmt->elseStmt(), indent + 1);
    return out;
  }
  case StmtKind::For: {
    const auto *forStmt = static_cast<const ForStmt *>(stmt);
    out += "ForStmt\n";
    if (forStmt->init() != nullptr)
      out += dumpStmt(forStmt->init(), indent + 1);
    if (forStmt->cond() != nullptr)
      out += dumpExpr(forStmt->cond(), indent + 1);
    if (forStmt->inc() != nullptr)
      out += dumpExpr(forStmt->inc(), indent + 1);
    out += dumpStmt(forStmt->body(), indent + 1);
    return out;
  }
  case StmtKind::While: {
    const auto *whileStmt = static_cast<const WhileStmt *>(stmt);
    out += "WhileStmt\n";
    out += dumpExpr(whileStmt->cond(), indent + 1);
    out += dumpStmt(whileStmt->body(), indent + 1);
    return out;
  }
  case StmtKind::Do: {
    const auto *doStmt = static_cast<const DoStmt *>(stmt);
    out += "DoStmt\n";
    out += dumpStmt(doStmt->body(), indent + 1);
    out += dumpExpr(doStmt->cond(), indent + 1);
    return out;
  }
  case StmtKind::Switch: {
    const auto *switchStmt = static_cast<const SwitchStmt *>(stmt);
    out += "SwitchStmt\n";
    out += dumpExpr(switchStmt->cond(), indent + 1);
    out += dumpStmt(switchStmt->body(), indent + 1);
    return out;
  }
  case StmtKind::Case: {
    const auto *caseStmt = static_cast<const CaseStmt *>(stmt);
    out += "CaseStmt\n";
    out += dumpExpr(caseStmt->value(), indent + 1);
    out += dumpStmt(caseStmt->sub(), indent + 1);
    return out;
  }
  case StmtKind::Default:
    out += "DefaultStmt\n";
    return out + dumpStmt(static_cast<const DefaultStmt *>(stmt)->sub(),
                          indent + 1);
  case StmtKind::Break:
    return out + "BreakStmt\n";
  case StmtKind::Continue:
    return out + "ContinueStmt\n";
  case StmtKind::Return: {
    out += "ReturnStmt\n";
    const auto *returnStmt = static_cast<const ReturnStmt *>(stmt);
    if (returnStmt->value() != nullptr)
      out += dumpExpr(returnStmt->value(), indent + 1);
    return out;
  }
  case StmtKind::Null:
    return out + "NullStmt\n";
  case StmtKind::OmpDirective: {
    const auto *directive = static_cast<const OmpDirectiveStmt *>(stmt);
    out += std::string("OmpDirective 'omp ") +
           directiveSpelling(directive->directive()) + "'";
    for (const OmpClause &clause : directive->clauses()) {
      out += " ";
      switch (clause.kind) {
      case OmpClauseKind::Map:
        out += std::string("map(") + mapTypeSpelling(clause.mapType) + ":";
        break;
      case OmpClauseKind::FirstPrivate:
        out += "firstprivate(";
        break;
      case OmpClauseKind::UpdateTo:
        out += "to(";
        break;
      case OmpClauseKind::UpdateFrom:
        out += "from(";
        break;
      case OmpClauseKind::Reduction:
        out += "reduction(" + clause.reductionOp + ":";
        break;
      default:
        out += "clause(";
        break;
      }
      bool first = true;
      for (const OmpObject &object : clause.objects) {
        if (!first)
          out += ",";
        out += object.spelling;
        first = false;
      }
      out += ")";
    }
    out += "\n";
    if (directive->associated() != nullptr)
      out += dumpStmt(directive->associated(), indent + 1);
    return out;
  }
  }
  return out + "?\n";
}

std::string dumpFunction(const FunctionDecl *fn) {
  std::string out = "FunctionDecl '" + fn->name() + "' '" +
                    fn->returnType()->spelling() + "(";
  bool first = true;
  for (const VarDecl *param : fn->params()) {
    if (!first)
      out += ", ";
    out += param->type()->spelling();
    first = false;
  }
  out += ")'\n";
  if (fn->body() != nullptr)
    out += dumpStmt(fn->body(), 1);
  return out;
}

std::string dumpTranslationUnit(const TranslationUnit &unit) {
  std::string out = "TranslationUnit\n";
  for (const VarDecl *global : unit.globals) {
    out += "  GlobalVar '" + global->name() + "' '" +
           global->type()->spelling() + "'\n";
  }
  for (const FunctionDecl *fn : unit.functions)
    out += dumpFunction(fn);
  return out;
}

} // namespace ompdart
