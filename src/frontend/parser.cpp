#include "frontend/parser.hpp"

#include "frontend/const_fold.hpp"

#include <cassert>
#include <cstdlib>

namespace ompdart {

namespace {

/// C binary operator precedence (higher binds tighter). Assignment and the
/// conditional operator are handled separately (right associative).
int binaryPrecedence(TokenKind kind) {
  switch (kind) {
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 10;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 9;
  case TokenKind::LessLess:
  case TokenKind::GreaterGreater:
    return 8;
  case TokenKind::Less:
  case TokenKind::Greater:
  case TokenKind::LessEqual:
  case TokenKind::GreaterEqual:
    return 7;
  case TokenKind::EqualEqual:
  case TokenKind::ExclaimEqual:
    return 6;
  case TokenKind::Amp:
    return 5;
  case TokenKind::Caret:
    return 4;
  case TokenKind::Pipe:
    return 3;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::PipePipe:
    return 1;
  default:
    return -1;
  }
}

BinaryOp binaryOpFor(TokenKind kind) {
  switch (kind) {
  case TokenKind::Star:
    return BinaryOp::Mul;
  case TokenKind::Slash:
    return BinaryOp::Div;
  case TokenKind::Percent:
    return BinaryOp::Rem;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::LessLess:
    return BinaryOp::Shl;
  case TokenKind::GreaterGreater:
    return BinaryOp::Shr;
  case TokenKind::Less:
    return BinaryOp::LT;
  case TokenKind::Greater:
    return BinaryOp::GT;
  case TokenKind::LessEqual:
    return BinaryOp::LE;
  case TokenKind::GreaterEqual:
    return BinaryOp::GE;
  case TokenKind::EqualEqual:
    return BinaryOp::EQ;
  case TokenKind::ExclaimEqual:
    return BinaryOp::NE;
  case TokenKind::Amp:
    return BinaryOp::BitAnd;
  case TokenKind::Caret:
    return BinaryOp::BitXor;
  case TokenKind::Pipe:
    return BinaryOp::BitOr;
  case TokenKind::AmpAmp:
    return BinaryOp::LAnd;
  case TokenKind::PipePipe:
    return BinaryOp::LOr;
  default:
    return BinaryOp::Add;
  }
}

std::optional<BinaryOp> assignmentOpFor(TokenKind kind) {
  switch (kind) {
  case TokenKind::Equal:
    return BinaryOp::Assign;
  case TokenKind::StarEqual:
    return BinaryOp::MulAssign;
  case TokenKind::SlashEqual:
    return BinaryOp::DivAssign;
  case TokenKind::PercentEqual:
    return BinaryOp::RemAssign;
  case TokenKind::PlusEqual:
    return BinaryOp::AddAssign;
  case TokenKind::MinusEqual:
    return BinaryOp::SubAssign;
  case TokenKind::LessLessEqual:
    return BinaryOp::ShlAssign;
  case TokenKind::GreaterGreaterEqual:
    return BinaryOp::ShrAssign;
  case TokenKind::AmpEqual:
    return BinaryOp::AndAssign;
  case TokenKind::PipeEqual:
    return BinaryOp::OrAssign;
  case TokenKind::CaretEqual:
    return BinaryOp::XorAssign;
  default:
    return std::nullopt;
  }
}

} // namespace

Parser::Parser(const SourceManager &sourceManager, ASTContext &context,
               DiagnosticEngine &diags)
    : sourceManager_(sourceManager), context_(context), diags_(diags) {
  Lexer lexer(sourceManager, diags);
  tokens_ = lexer.lexAll();
  scopes_.emplace_back(); // global scope
}

const Token &Parser::peekAhead(std::size_t n) const {
  const std::size_t index = pos_ + n;
  return index < tokens_.size() ? tokens_[index] : tokens_.back();
}

Token Parser::consume() {
  Token token = tokens_[pos_];
  if (pos_ + 1 < tokens_.size())
    ++pos_;
  return token;
}

bool Parser::accept(TokenKind kind) {
  if (check(kind)) {
    consume();
    return true;
  }
  return false;
}

bool Parser::expect(TokenKind kind, const char *context) {
  if (accept(kind))
    return true;
  error(std::string("expected ") + tokenKindName(kind) + " " + context +
        ", found '" + current().text + "'");
  return false;
}

void Parser::error(const std::string &message) {
  diags_.error(current().location, message);
}

void Parser::skipToRecovery() {
  unsigned depth = 0;
  while (!check(TokenKind::Eof)) {
    const TokenKind kind = current().kind;
    if (depth == 0 && (kind == TokenKind::Semi || kind == TokenKind::RBrace)) {
      consume();
      return;
    }
    if (kind == TokenKind::LBrace)
      ++depth;
    else if (kind == TokenKind::RBrace && depth > 0)
      --depth;
    consume();
  }
}

void Parser::pushScope() { scopes_.emplace_back(); }

void Parser::popScope() {
  assert(scopes_.size() > 1);
  scopes_.pop_back();
}

VarDecl *Parser::lookup(const std::string &name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end())
      return found->second;
  }
  return nullptr;
}

void Parser::declare(VarDecl *var) { scopes_.back()[var->name()] = var; }

SourceLocation Parser::locAt(std::size_t tokenIndex) const {
  return tokens_[tokenIndex].location;
}

SourceRange Parser::rangeFrom(std::size_t beginTokenIndex) const {
  SourceLocation begin = tokens_[beginTokenIndex].location;
  // End is the end offset of the previously consumed token.
  const std::size_t lastIndex = pos_ == 0 ? 0 : pos_ - 1;
  SourceLocation end = tokens_[lastIndex].location;
  end.offset = tokens_[lastIndex].endOffset;
  return SourceRange(begin, end);
}

std::string Parser::textBetween(std::size_t beginOffset,
                                std::size_t endOffset) const {
  const std::string &text = sourceManager_.text();
  if (beginOffset >= text.size() || endOffset > text.size() ||
      beginOffset >= endOffset)
    return {};
  return text.substr(beginOffset, endOffset - beginOffset);
}

// ---------------------------------------------------------------------------
// Types & declarations
// ---------------------------------------------------------------------------

bool Parser::atTypeSpecifier() const {
  switch (current().kind) {
  case TokenKind::KwVoid:
  case TokenKind::KwBool:
  case TokenKind::KwChar:
  case TokenKind::KwShort:
  case TokenKind::KwInt:
  case TokenKind::KwLong:
  case TokenKind::KwFloat:
  case TokenKind::KwDouble:
  case TokenKind::KwUnsigned:
  case TokenKind::KwSigned:
  case TokenKind::KwConst:
  case TokenKind::KwStatic:
  case TokenKind::KwExtern:
  case TokenKind::KwStruct:
  case TokenKind::KwTypedef:
    return true;
  case TokenKind::Identifier:
    return typedefs_.count(current().text) > 0;
  default:
    return false;
  }
}

std::optional<Parser::DeclSpec> Parser::parseDeclSpec() {
  DeclSpec spec;
  bool sawUnsigned = false;
  bool sawSigned = false;
  int longCount = 0;
  std::optional<BuiltinKind> builtin;
  const Type *named = nullptr;

  while (true) {
    switch (current().kind) {
    case TokenKind::KwConst:
      spec.isConst = true;
      consume();
      continue;
    case TokenKind::KwStatic:
      spec.isStatic = true;
      consume();
      continue;
    case TokenKind::KwExtern:
      spec.isExtern = true;
      consume();
      continue;
    case TokenKind::KwTypedef:
      spec.isTypedef = true;
      consume();
      continue;
    case TokenKind::KwUnsigned:
      sawUnsigned = true;
      consume();
      continue;
    case TokenKind::KwSigned:
      sawSigned = true;
      consume();
      continue;
    case TokenKind::KwVoid:
      builtin = BuiltinKind::Void;
      consume();
      continue;
    case TokenKind::KwBool:
      builtin = BuiltinKind::Bool;
      consume();
      continue;
    case TokenKind::KwChar:
      builtin = BuiltinKind::Char;
      consume();
      continue;
    case TokenKind::KwShort:
      builtin = BuiltinKind::Short;
      consume();
      continue;
    case TokenKind::KwInt:
      if (!builtin)
        builtin = BuiltinKind::Int;
      consume();
      continue;
    case TokenKind::KwLong:
      ++longCount;
      consume();
      continue;
    case TokenKind::KwFloat:
      builtin = BuiltinKind::Float;
      consume();
      continue;
    case TokenKind::KwDouble:
      builtin = BuiltinKind::Double;
      consume();
      continue;
    case TokenKind::KwStruct: {
      consume();
      if (!check(TokenKind::Identifier)) {
        error("expected struct name");
        return std::nullopt;
      }
      const std::string name = consume().text;
      auto it = recordsByName_.find(name);
      RecordDecl *record = nullptr;
      if (it != recordsByName_.end()) {
        record = it->second;
      } else {
        record = context_.createRecord(name);
        recordsByName_[name] = record;
        context_.unit().records.push_back(record);
      }
      // Inline definition `struct X { ... }`.
      if (check(TokenKind::LBrace)) {
        consume();
        while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
          auto fieldSpec = parseDeclSpec();
          if (!fieldSpec || fieldSpec->type == nullptr) {
            error("expected field type in struct definition");
            skipToRecovery();
            break;
          }
          do {
            bool pointeeConst = fieldSpec->isConst;
            const Type *fieldType =
                parseDeclaratorPointers(fieldSpec->type, pointeeConst);
            if (!check(TokenKind::Identifier)) {
              error("expected field name");
              break;
            }
            const std::string fieldName = consume().text;
            fieldType = parseArrayDimensions(fieldType);
            record->addField(fieldName, fieldType);
          } while (accept(TokenKind::Comma));
          expect(TokenKind::Semi, "after struct field");
        }
        expect(TokenKind::RBrace, "to close struct definition");
      }
      named = context_.types().recordOf(record);
      continue;
    }
    case TokenKind::Identifier: {
      if (!builtin && named == nullptr && longCount == 0 && !sawUnsigned &&
          !sawSigned) {
        auto it = typedefs_.find(current().text);
        if (it != typedefs_.end()) {
          named = it->second;
          consume();
          continue;
        }
      }
      break;
    }
    default:
      break;
    }
    break;
  }

  if (named != nullptr) {
    spec.type = named;
    return spec;
  }
  if (longCount > 0) {
    spec.type =
        context_.types().builtin(sawUnsigned ? BuiltinKind::ULong
                                             : BuiltinKind::Long);
    return spec;
  }
  if (sawUnsigned) {
    spec.type = context_.types().builtin(
        builtin.value_or(BuiltinKind::Int) == BuiltinKind::Char
            ? BuiltinKind::Char
            : BuiltinKind::UInt);
    return spec;
  }
  if (builtin) {
    spec.type = context_.types().builtin(*builtin);
    return spec;
  }
  if (sawSigned) {
    spec.type = context_.types().intType();
    return spec;
  }
  return std::nullopt;
}

const Type *Parser::parseDeclaratorPointers(const Type *base,
                                            bool pointeeConst) {
  const Type *type = base;
  while (accept(TokenKind::Star)) {
    type = context_.types().pointerTo(type, pointeeConst);
    pointeeConst = false;
    // `T * const p` — const applying to the pointer itself; note and skip.
    accept(TokenKind::KwConst);
  }
  return type;
}

const Type *Parser::parseArrayDimensions(const Type *base) {
  // Collect dimensions first so multi-dimensional arrays nest correctly
  // (int a[2][3] is array-2 of array-3 of int).
  std::vector<std::pair<std::optional<std::uint64_t>, std::string>> dims;
  while (check(TokenKind::LBracket)) {
    consume();
    if (accept(TokenKind::RBracket)) {
      dims.emplace_back(std::nullopt, "");
      continue;
    }
    const std::size_t beginOffset = current().location.offset;
    Expr *extentExpr = parseConditional();
    const std::size_t endOffset =
        pos_ > 0 ? tokens_[pos_ - 1].endOffset : beginOffset;
    std::string spelling = textBetween(beginOffset, endOffset);
    expect(TokenKind::RBracket, "to close array dimension");
    std::optional<std::uint64_t> extent;
    if (auto value = foldIntegerConstant(extentExpr); value && *value >= 0)
      extent = static_cast<std::uint64_t>(*value);
    dims.emplace_back(extent, std::move(spelling));
  }
  const Type *type = base;
  for (auto it = dims.rbegin(); it != dims.rend(); ++it)
    type = context_.types().arrayOf(type, it->first, it->second);
  return type;
}

bool Parser::parseTranslationUnit() {
  while (!check(TokenKind::Eof)) {
    parseTopLevel();
  }
  return !diags_.hasErrors();
}

void Parser::parseTopLevel() {
  if (check(TokenKind::PragmaOmp)) {
    // Top-level pragmas (e.g. declare target) are out of subset; skip line.
    while (!check(TokenKind::PragmaEnd) && !check(TokenKind::Eof))
      consume();
    accept(TokenKind::PragmaEnd);
    return;
  }
  if (check(TokenKind::Semi)) {
    consume();
    return;
  }
  auto spec = parseDeclSpec();
  if (!spec || spec->type == nullptr) {
    error("expected declaration at top level, found '" + current().text + "'");
    skipToRecovery();
    return;
  }
  if (spec->isTypedef) {
    // `typedef <type> Name;`
    bool pointeeConst = spec->isConst;
    const Type *type = parseDeclaratorPointers(spec->type, pointeeConst);
    if (!check(TokenKind::Identifier)) {
      error("expected typedef name");
      skipToRecovery();
      return;
    }
    const std::string name = consume().text;
    const Type *full = parseArrayDimensions(type);
    typedefs_[name] = full;
    expect(TokenKind::Semi, "after typedef");
    return;
  }
  if (check(TokenKind::Semi)) {
    // A bare `struct X {...};` definition.
    consume();
    return;
  }
  parseFunctionOrGlobal(*spec);
}

void Parser::parseFunctionOrGlobal(const DeclSpec &spec) {
  const std::size_t beginToken = pos_ == 0 ? 0 : pos_ - 1;
  (void)beginToken;
  while (true) {
    const std::size_t declBeginToken = pos_;
    bool pointeeConst = spec.isConst;
    const Type *declType = parseDeclaratorPointers(spec.type, pointeeConst);
    if (!check(TokenKind::Identifier)) {
      error("expected declarator name");
      skipToRecovery();
      return;
    }
    const std::string name = consume().text;

    if (check(TokenKind::LParen)) {
      FunctionDecl *fn = parseFunctionRest(spec, name, declType,
                                           locAt(declBeginToken).offset);
      (void)fn;
      return;
    }

    // Global variable. Redeclarations of one name unify onto a single
    // VarDecl (C linkage): an `extern` redeclaration after the definition
    // — or a definition after an `extern` declaration, as concatenated
    // multi-TU programs produce — must bind every reference to the same
    // object, not shadow it.
    const Type *varType = parseArrayDimensions(declType);
    VarDecl *existing = nullptr;
    for (VarDecl *global : context_.unit().globals) {
      if (global->name() == name) {
        existing = global;
        break;
      }
    }
    // `static` globals have internal linkage: in a concatenated multi-TU
    // program two same-named statics are distinct objects, so they never
    // unify (the later declaration shadows, as before).
    if (existing != nullptr && (existing->isStatic() || spec.isStatic))
      existing = nullptr;
    VarDecl *var = existing;
    if (var == nullptr) {
      var = context_.createVar(name, varType);
      var->setGlobal(true);
      var->setConst(spec.isConst && !varType->isPointer());
      var->setStatic(spec.isStatic);
      var->setExtern(spec.isExtern);
      var->setRange(rangeFrom(declBeginToken));
    } else {
      if (existing->isExtern() && !spec.isExtern) {
        // Definition after an extern declaration: the object gains
        // storage and the definition's type wins — unless adopting it
        // would lose an extent the declaration carried (`extern double
        // a[64];` then tentative `double a[];`).
        existing->setExtern(false);
        const auto *oldArray =
            dynamic_cast<const ArrayType *>(existing->type());
        const auto *newArray = dynamic_cast<const ArrayType *>(varType);
        const bool losesExtent = oldArray != nullptr &&
                                 newArray != nullptr &&
                                 oldArray->extent() && !newArray->extent();
        if (!losesExtent)
          existing->setType(varType);
      } else {
        // Any redeclaration may complete an array type (`extern double
        // a[];` then `extern double a[64];`): adopt the sized form so the
        // extent is never lost to declaration order.
        const auto *oldArray =
            dynamic_cast<const ArrayType *>(existing->type());
        const auto *newArray = dynamic_cast<const ArrayType *>(varType);
        if (oldArray != nullptr && newArray != nullptr &&
            !oldArray->extent() && newArray->extent())
          existing->setType(varType);
      }
    }
    if (accept(TokenKind::Equal)) {
      Expr *init = nullptr;
      if (check(TokenKind::LBrace)) {
        std::vector<Expr *> inits;
        consume();
        if (!check(TokenKind::RBrace)) {
          do {
            inits.push_back(parseAssignment());
          } while (accept(TokenKind::Comma));
        }
        expect(TokenKind::RBrace, "to close initializer list");
        init = context_.createExpr<InitListExpr>(std::move(inits), varType);
      } else {
        init = parseAssignment();
      }
      if (existing != nullptr && existing->init() != nullptr)
        diags_.warning(locAt(declBeginToken),
                       "redefinition of global '" + name + "'");
      else
        var->setInit(init);
    }
    declare(var);
    if (existing == nullptr) {
      context_.unit().globals.push_back(var);
      var->setDeclStmtRange(rangeFrom(declBeginToken));
    }
    if (accept(TokenKind::Comma))
      continue;
    expect(TokenKind::Semi, "after global variable declaration");
    return;
  }
}

FunctionDecl *Parser::parseFunctionRest(const DeclSpec &spec,
                                        const std::string &name,
                                        const Type *declType,
                                        std::size_t beginOffset) {
  expect(TokenKind::LParen, "after function name");
  pushScope();
  std::vector<VarDecl *> params;
  if (!check(TokenKind::RParen)) {
    if (check(TokenKind::KwVoid) && peekAhead().kind == TokenKind::RParen) {
      consume();
    } else {
      do {
        auto paramSpec = parseDeclSpec();
        if (!paramSpec || paramSpec->type == nullptr) {
          error("expected parameter type");
          break;
        }
        bool pointeeConst = paramSpec->isConst;
        const Type *paramType =
            parseDeclaratorPointers(paramSpec->type, pointeeConst);
        std::string paramName;
        if (check(TokenKind::Identifier))
          paramName = consume().text;
        // Array parameters decay to pointers: `int a[]` or `int a[N]`.
        if (check(TokenKind::LBracket)) {
          const Type *withDims = parseArrayDimensions(paramType);
          if (const auto *array = dynamic_cast<const ArrayType *>(withDims))
            paramType =
                context_.types().pointerTo(array->element(), paramSpec->isConst);
        }
        VarDecl *param = context_.createVar(paramName, paramType);
        param->setParam(true);
        param->setConst(paramSpec->isConst && !paramType->isPointer());
        declare(param);
        params.push_back(param);
      } while (accept(TokenKind::Comma));
    }
  }
  expect(TokenKind::RParen, "to close parameter list");

  FunctionDecl *fn = nullptr;
  if (FunctionDecl *existing = context_.unit().findFunction(name)) {
    fn = existing; // definition after prototype
  } else {
    fn = context_.createFunction(name, declType, params);
    context_.unit().functions.push_back(fn);
  }
  if (spec.isStatic)
    fn->setStatic(true);

  if (check(TokenKind::LBrace)) {
    if (fn->body() != nullptr)
      diags_.warning(current().location,
                     "redefinition of function '" + name + "'");
    FunctionDecl *previous = currentFunction_;
    currentFunction_ = fn;
    // The definition's parameter VarDecls are the ones the body references;
    // they replace any prototype parameters.
    fn->setParams(params);
    Stmt *body = parseCompound();
    fn->setBody(static_cast<CompoundStmt *>(body));
    currentFunction_ = previous;
  } else {
    expect(TokenKind::Semi, "after function prototype");
  }
  popScope();
  SourceLocation begin = sourceManager_.locationFor(beginOffset);
  SourceLocation end = tokens_[pos_ == 0 ? 0 : pos_ - 1].location;
  end.offset = tokens_[pos_ == 0 ? 0 : pos_ - 1].endOffset;
  fn->setRange(SourceRange(begin, end));
  return fn;
}

Stmt *Parser::parseDeclStmt() {
  const std::size_t beginToken = pos_;
  auto spec = parseDeclSpec();
  if (!spec || spec->type == nullptr) {
    error("expected declaration");
    skipToRecovery();
    return context_.createStmt<NullStmt>();
  }
  std::vector<VarDecl *> decls;
  do {
    VarDecl *var = parseInitDeclarator(*spec, /*isGlobal=*/false);
    if (var != nullptr)
      decls.push_back(var);
  } while (accept(TokenKind::Comma));
  expect(TokenKind::Semi, "after declaration");
  Stmt *stmt = context_.createStmt<DeclStmt>(std::move(decls));
  stmt->setRange(rangeFrom(beginToken));
  for (VarDecl *var :
       static_cast<DeclStmt *>(stmt)->decls())
    var->setDeclStmtRange(stmt->range());
  return stmt;
}

VarDecl *Parser::parseInitDeclarator(const DeclSpec &spec, bool isGlobal) {
  const std::size_t beginToken = pos_;
  bool pointeeConst = spec.isConst;
  const Type *type = parseDeclaratorPointers(spec.type, pointeeConst);
  if (!check(TokenKind::Identifier)) {
    error("expected variable name");
    return nullptr;
  }
  const std::string name = consume().text;
  type = parseArrayDimensions(type);
  VarDecl *var = context_.createVar(name, type);
  var->setGlobal(isGlobal);
  var->setConst(spec.isConst && !type->isPointer());
  var->setStatic(spec.isStatic);
  if (accept(TokenKind::Equal)) {
    if (check(TokenKind::LBrace)) {
      std::vector<Expr *> inits;
      consume();
      if (!check(TokenKind::RBrace)) {
        do {
          inits.push_back(parseAssignment());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RBrace, "to close initializer list");
      var->setInit(context_.createExpr<InitListExpr>(std::move(inits), type));
    } else {
      var->setInit(parseAssignment());
    }
  }
  var->setRange(rangeFrom(beginToken));
  declare(var);
  return var;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Stmt *Parser::parseStmt() {
  const std::size_t beginToken = pos_;
  switch (current().kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::Semi: {
    consume();
    Stmt *stmt = context_.createStmt<NullStmt>();
    stmt->setRange(rangeFrom(beginToken));
    return stmt;
  }
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDo();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwBreak: {
    consume();
    expect(TokenKind::Semi, "after break");
    Stmt *stmt = context_.createStmt<BreakStmt>();
    stmt->setRange(rangeFrom(beginToken));
    return stmt;
  }
  case TokenKind::KwContinue: {
    consume();
    expect(TokenKind::Semi, "after continue");
    Stmt *stmt = context_.createStmt<ContinueStmt>();
    stmt->setRange(rangeFrom(beginToken));
    return stmt;
  }
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwCase: {
    consume();
    Expr *value = parseConditional();
    expect(TokenKind::Colon, "after case value");
    Stmt *sub = parseStmt();
    Stmt *stmt = context_.createStmt<CaseStmt>(value, sub);
    stmt->setRange(rangeFrom(beginToken));
    return stmt;
  }
  case TokenKind::KwDefault: {
    consume();
    expect(TokenKind::Colon, "after default");
    Stmt *sub = parseStmt();
    Stmt *stmt = context_.createStmt<DefaultStmt>(sub);
    stmt->setRange(rangeFrom(beginToken));
    return stmt;
  }
  case TokenKind::PragmaOmp:
    return parseOmpDirective();
  default:
    break;
  }
  if (atTypeSpecifier())
    return parseDeclStmt();

  Expr *expr = parseExpr();
  expect(TokenKind::Semi, "after expression statement");
  Stmt *stmt = context_.createStmt<ExprStmt>(expr);
  stmt->setRange(rangeFrom(beginToken));
  return stmt;
}

Stmt *Parser::parseCompound() {
  const std::size_t beginToken = pos_;
  expect(TokenKind::LBrace, "to open block");
  pushScope();
  std::vector<Stmt *> body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof))
    body.push_back(parseStmt());
  expect(TokenKind::RBrace, "to close block");
  popScope();
  Stmt *stmt = context_.createStmt<CompoundStmt>(std::move(body));
  stmt->setRange(rangeFrom(beginToken));
  return stmt;
}

Stmt *Parser::parseIf() {
  const std::size_t beginToken = pos_;
  consume(); // if
  expect(TokenKind::LParen, "after 'if'");
  Expr *cond = parseExpr();
  expect(TokenKind::RParen, "to close if condition");
  Stmt *thenStmt = parseStmt();
  Stmt *elseStmt = nullptr;
  if (accept(TokenKind::KwElse))
    elseStmt = parseStmt();
  Stmt *stmt = context_.createStmt<IfStmt>(cond, thenStmt, elseStmt);
  stmt->setRange(rangeFrom(beginToken));
  return stmt;
}

Stmt *Parser::parseFor() {
  const std::size_t beginToken = pos_;
  consume(); // for
  expect(TokenKind::LParen, "after 'for'");
  pushScope();
  Stmt *init = nullptr;
  if (check(TokenKind::Semi)) {
    consume();
  } else if (atTypeSpecifier()) {
    init = parseDeclStmt();
  } else {
    Expr *initExpr = parseExpr();
    expect(TokenKind::Semi, "after for-init");
    init = context_.createStmt<ExprStmt>(initExpr);
  }
  Expr *cond = nullptr;
  if (!check(TokenKind::Semi))
    cond = parseExpr();
  expect(TokenKind::Semi, "after for-condition");
  Expr *inc = nullptr;
  if (!check(TokenKind::RParen))
    inc = parseExpr();
  expect(TokenKind::RParen, "to close for header");
  Stmt *body = parseStmt();
  popScope();
  Stmt *stmt = context_.createStmt<ForStmt>(init, cond, inc, body);
  stmt->setRange(rangeFrom(beginToken));
  return stmt;
}

Stmt *Parser::parseWhile() {
  const std::size_t beginToken = pos_;
  consume(); // while
  expect(TokenKind::LParen, "after 'while'");
  Expr *cond = parseExpr();
  expect(TokenKind::RParen, "to close while condition");
  Stmt *body = parseStmt();
  Stmt *stmt = context_.createStmt<WhileStmt>(cond, body);
  stmt->setRange(rangeFrom(beginToken));
  return stmt;
}

Stmt *Parser::parseDo() {
  const std::size_t beginToken = pos_;
  consume(); // do
  Stmt *body = parseStmt();
  expect(TokenKind::KwWhile, "after do body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *cond = parseExpr();
  expect(TokenKind::RParen, "to close do-while condition");
  expect(TokenKind::Semi, "after do-while");
  Stmt *stmt = context_.createStmt<DoStmt>(body, cond);
  stmt->setRange(rangeFrom(beginToken));
  return stmt;
}

Stmt *Parser::parseSwitch() {
  const std::size_t beginToken = pos_;
  consume(); // switch
  expect(TokenKind::LParen, "after 'switch'");
  Expr *cond = parseExpr();
  expect(TokenKind::RParen, "to close switch condition");
  Stmt *body = parseStmt();
  Stmt *stmt = context_.createStmt<SwitchStmt>(cond, body);
  stmt->setRange(rangeFrom(beginToken));
  return stmt;
}

Stmt *Parser::parseReturn() {
  const std::size_t beginToken = pos_;
  consume(); // return
  Expr *value = nullptr;
  if (!check(TokenKind::Semi))
    value = parseExpr();
  expect(TokenKind::Semi, "after return");
  Stmt *stmt = context_.createStmt<ReturnStmt>(value);
  stmt->setRange(rangeFrom(beginToken));
  return stmt;
}

// ---------------------------------------------------------------------------
// OpenMP directives
// ---------------------------------------------------------------------------

std::optional<OmpDirectiveKind> Parser::parseOmpDirectiveName() {
  // Directive names are sequences of identifier-ish words; `for` arrives as
  // the KwFor keyword.
  auto word = [&]() -> std::string {
    if (check(TokenKind::KwFor)) {
      consume();
      return "for";
    }
    if (check(TokenKind::KwIf)) {
      // `if` can only be a clause here, never part of the name.
      return "";
    }
    if (check(TokenKind::Identifier)) {
      // Clause names stop the directive-name scan; handled by caller peek.
      return consume().text;
    }
    return "";
  };

  if (!check(TokenKind::Identifier))
    return std::nullopt;
  std::string first = consume().text;

  if (first == "parallel") {
    // host `parallel for`
    if (check(TokenKind::KwFor)) {
      consume();
      return OmpDirectiveKind::ParallelFor;
    }
    return std::nullopt;
  }
  if (first != "target")
    return std::nullopt;

  // Peek the next word without consuming clause names.
  auto peekWordIs = [&](const char *name) {
    return current().isIdentifier(name) ||
           (std::string(name) == "for" && check(TokenKind::KwFor));
  };

  if (peekWordIs("data")) {
    consume();
    return OmpDirectiveKind::TargetData;
  }
  if (peekWordIs("enter")) {
    consume();
    if (peekWordIs("data"))
      consume();
    return OmpDirectiveKind::TargetEnterData;
  }
  if (peekWordIs("exit")) {
    consume();
    if (peekWordIs("data"))
      consume();
    return OmpDirectiveKind::TargetExitData;
  }
  if (peekWordIs("update")) {
    consume();
    return OmpDirectiveKind::TargetUpdate;
  }
  if (peekWordIs("simd")) {
    consume();
    return OmpDirectiveKind::TargetSimd;
  }
  if (peekWordIs("parallel")) {
    consume();
    if (peekWordIs("for")) {
      consume();
      if (peekWordIs("simd")) {
        consume();
        return OmpDirectiveKind::TargetParallelForSimd;
      }
      return OmpDirectiveKind::TargetParallelFor;
    }
    if (peekWordIs("loop")) {
      consume();
      return OmpDirectiveKind::TargetParallelLoop;
    }
    return OmpDirectiveKind::TargetParallel;
  }
  if (peekWordIs("teams")) {
    consume();
    if (peekWordIs("distribute")) {
      consume();
      if (peekWordIs("parallel")) {
        consume();
        if (peekWordIs("for")) {
          consume();
          if (peekWordIs("simd")) {
            consume();
            return OmpDirectiveKind::TargetTeamsDistributeParallelForSimd;
          }
          return OmpDirectiveKind::TargetTeamsDistributeParallelFor;
        }
        return OmpDirectiveKind::TargetTeamsDistribute;
      }
      if (peekWordIs("simd")) {
        consume();
        return OmpDirectiveKind::TargetTeamsDistributeSimd;
      }
      return OmpDirectiveKind::TargetTeamsDistribute;
    }
    if (peekWordIs("loop")) {
      consume();
      return OmpDirectiveKind::TargetTeamsLoop;
    }
    return OmpDirectiveKind::TargetTeams;
  }
  (void)word;
  return OmpDirectiveKind::Target;
}

Stmt *Parser::parseOmpDirective() {
  const std::size_t pragmaToken = pos_;
  consume(); // PragmaOmp

  auto kind = parseOmpDirectiveName();
  if (!kind) {
    diags_.warning(tokens_[pragmaToken].location,
                   "ignoring unsupported OpenMP directive");
    while (!check(TokenKind::PragmaEnd) && !check(TokenKind::Eof))
      consume();
    accept(TokenKind::PragmaEnd);
    return parseStmt();
  }

  std::vector<OmpClause> clauses;
  parseOmpClauses(clauses, *kind);

  // Pragma range spans '#' through the last clause token (before PragmaEnd).
  SourceLocation pragmaBegin = tokens_[pragmaToken].location;
  const std::size_t lastTokenIndex = pos_ == 0 ? 0 : pos_ - 1;
  SourceLocation pragmaEnd = tokens_[lastTokenIndex].location;
  pragmaEnd.offset = tokens_[lastTokenIndex].endOffset;
  expect(TokenKind::PragmaEnd, "at end of OpenMP directive");

  Stmt *associated = nullptr;
  const bool standalone = *kind == OmpDirectiveKind::TargetUpdate ||
                          *kind == OmpDirectiveKind::TargetEnterData ||
                          *kind == OmpDirectiveKind::TargetExitData;
  if (!standalone)
    associated = parseStmt();

  auto *stmt = context_.createStmt<OmpDirectiveStmt>(
      *kind, std::move(clauses), associated,
      SourceRange(pragmaBegin, pragmaEnd));
  SourceLocation end =
      associated != nullptr ? associated->range().end : pragmaEnd;
  stmt->setRange(SourceRange(pragmaBegin, end));
  return stmt;
}

bool Parser::parseOmpClauses(std::vector<OmpClause> &clauses,
                             OmpDirectiveKind directive) {
  while (!check(TokenKind::PragmaEnd) && !check(TokenKind::Eof)) {
    // Clause name (identifier or keyword-like `if`).
    std::string name;
    if (check(TokenKind::Identifier))
      name = consume().text;
    else if (check(TokenKind::KwIf)) {
      consume();
      name = "if";
    } else {
      error("expected OpenMP clause name, found '" + current().text + "'");
      while (!check(TokenKind::PragmaEnd) && !check(TokenKind::Eof))
        consume();
      return false;
    }

    OmpClause clause;
    if (name == "map") {
      clause.kind = OmpClauseKind::Map;
      expect(TokenKind::LParen, "after map");
      clause.mapType = OmpMapType::ToFrom;
      // Optional map-type modifiers: `always`, `present`, `close`, each
      // followed by a comma, preceding the map type (OpenMP 5.2
      // map([map-type-modifier[,]]... map-type: list); the planner's
      // warm-callee pass emits `present`).
      while (check(TokenKind::Identifier) &&
             peekAhead().kind == TokenKind::Comma &&
             (current().text == "always" || current().text == "present" ||
              current().text == "close")) {
        const std::string modifier = consume().text;
        consume(); // ','
        if (modifier == "always")
          clause.modifiers.always = true;
        else if (modifier == "present")
          clause.modifiers.present = true;
        else
          clause.modifiers.close = true;
      }
      // Optional map-type prefix `to:`, `from:`, `tofrom:`, `alloc:`...
      if (check(TokenKind::Identifier) &&
          peekAhead().kind == TokenKind::Colon) {
        const std::string mapType = consume().text;
        consume(); // ':'
        if (mapType == "to")
          clause.mapType = OmpMapType::To;
        else if (mapType == "from")
          clause.mapType = OmpMapType::From;
        else if (mapType == "tofrom")
          clause.mapType = OmpMapType::ToFrom;
        else if (mapType == "alloc")
          clause.mapType = OmpMapType::Alloc;
        else if (mapType == "release")
          clause.mapType = OmpMapType::Release;
        else if (mapType == "delete")
          clause.mapType = OmpMapType::Delete;
        else
          error("unknown map type '" + mapType + "'");
      }
      parseOmpObjectList(clause.objects);
      expect(TokenKind::RParen, "to close map clause");
    } else if (name == "firstprivate" || name == "private" ||
               name == "shared") {
      clause.kind = name == "firstprivate" ? OmpClauseKind::FirstPrivate
                    : name == "private"    ? OmpClauseKind::Private
                                           : OmpClauseKind::Shared;
      expect(TokenKind::LParen, "after clause name");
      parseOmpObjectList(clause.objects);
      expect(TokenKind::RParen, "to close clause");
    } else if (name == "to" || name == "from") {
      // Motion clauses on `target update`.
      clause.kind =
          name == "to" ? OmpClauseKind::UpdateTo : OmpClauseKind::UpdateFrom;
      if (directive != OmpDirectiveKind::TargetUpdate)
        diags_.warning(current().location,
                       "'" + name + "' clause outside target update");
      expect(TokenKind::LParen, "after update direction");
      parseOmpObjectList(clause.objects);
      expect(TokenKind::RParen, "to close update clause");
    } else if (name == "reduction") {
      clause.kind = OmpClauseKind::Reduction;
      expect(TokenKind::LParen, "after reduction");
      // Operator token(s) up to ':'.
      std::string op;
      while (!check(TokenKind::Colon) && !check(TokenKind::PragmaEnd) &&
             !check(TokenKind::Eof))
        op += consume().text;
      clause.reductionOp = op;
      expect(TokenKind::Colon, "after reduction operator");
      parseOmpObjectList(clause.objects);
      expect(TokenKind::RParen, "to close reduction clause");
    } else if (name == "num_teams" || name == "thread_limit" ||
               name == "num_threads" || name == "collapse" ||
               name == "device" || name == "simdlen" || name == "if") {
      clause.kind = name == "num_teams"      ? OmpClauseKind::NumTeams
                    : name == "thread_limit" ? OmpClauseKind::ThreadLimit
                    : name == "num_threads"  ? OmpClauseKind::NumThreads
                    : name == "collapse"     ? OmpClauseKind::Collapse
                    : name == "device"       ? OmpClauseKind::Device
                    : name == "simdlen"      ? OmpClauseKind::Simdlen
                                             : OmpClauseKind::If;
      expect(TokenKind::LParen, "after clause name");
      clause.value = parseConditional();
      expect(TokenKind::RParen, "to close clause");
    } else if (name == "nowait") {
      clause.kind = OmpClauseKind::Nowait;
    } else if (name == "schedule" || name == "dist_schedule" ||
               name == "defaultmap" || name == "proc_bind" ||
               name == "order") {
      clause.kind =
          name == "defaultmap" ? OmpClauseKind::DefaultMap : OmpClauseKind::Schedule;
      if (check(TokenKind::LParen))
        skipBalancedParens();
    } else {
      diags_.warning(current().location,
                     "ignoring unknown OpenMP clause '" + name + "'");
      if (check(TokenKind::LParen))
        skipBalancedParens();
      continue;
    }
    clauses.push_back(std::move(clause));
  }
  return true;
}

void Parser::skipBalancedParens() {
  if (!accept(TokenKind::LParen))
    return;
  unsigned depth = 1;
  while (depth > 0 && !check(TokenKind::PragmaEnd) && !check(TokenKind::Eof)) {
    if (check(TokenKind::LParen))
      ++depth;
    else if (check(TokenKind::RParen))
      --depth;
    consume();
  }
}

bool Parser::parseOmpObjectList(std::vector<OmpObject> &objects) {
  do {
    auto object = parseOmpObject();
    if (!object)
      return false;
    objects.push_back(std::move(*object));
  } while (accept(TokenKind::Comma));
  return true;
}

std::optional<OmpObject> Parser::parseOmpObject() {
  if (!check(TokenKind::Identifier)) {
    error("expected variable in OpenMP clause");
    return std::nullopt;
  }
  const std::size_t beginToken = pos_;
  const Token nameToken = consume();
  OmpObject object;
  object.var = lookup(nameToken.text);
  if (object.var == nullptr)
    error("unknown variable '" + nameToken.text + "' in OpenMP clause");

  while (check(TokenKind::LBracket)) {
    consume();
    OmpArraySectionDim dim;
    if (!check(TokenKind::Colon))
      dim.lower = parseConditional();
    if (accept(TokenKind::Colon)) {
      if (!check(TokenKind::RBracket))
        dim.length = parseConditional();
      else if (dim.lower == nullptr) {
        // `[:]` — whole dimension; leave both null.
      }
    }
    expect(TokenKind::RBracket, "to close array section");
    object.sections.push_back(dim);
  }
  object.range = rangeFrom(beginToken);
  object.spelling =
      textBetween(object.range.begin.offset, object.range.end.offset);
  return object;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Expr *Parser::parseExpr() {
  Expr *expr = parseAssignment();
  while (check(TokenKind::Comma)) {
    // Don't consume commas that belong to enclosing argument lists; the
    // grammar only reaches here inside parens/for-headers, where comma is
    // the sequencing operator.
    consume();
    Expr *rhs = parseAssignment();
    auto *combined = context_.createExpr<BinaryExpr>(BinaryOp::Comma, expr,
                                                     rhs, rhs->type());
    combined->setRange(SourceRange(expr->range().begin, rhs->range().end));
    expr = combined;
  }
  return expr;
}

Expr *Parser::parseAssignment() {
  Expr *lhs = parseConditional();
  const auto op = assignmentOpFor(current().kind);
  if (!op)
    return lhs;
  consume();
  Expr *rhs = parseAssignment(); // right associative
  auto *expr = context_.createExpr<BinaryExpr>(*op, lhs, rhs, lhs->type());
  expr->setRange(SourceRange(lhs->range().begin, rhs->range().end));
  return expr;
}

Expr *Parser::parseConditional() {
  Expr *cond = parseBinary(1);
  if (!accept(TokenKind::Question))
    return cond;
  Expr *trueExpr = parseAssignment();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *falseExpr = parseConditional();
  auto *expr = context_.createExpr<ConditionalExpr>(
      cond, trueExpr, falseExpr,
      arithmeticResultType(trueExpr->type(), falseExpr->type()));
  expr->setRange(SourceRange(cond->range().begin, falseExpr->range().end));
  return expr;
}

Expr *Parser::parseBinary(int minPrecedence) {
  Expr *lhs = parseUnary();
  while (true) {
    const int precedence = binaryPrecedence(current().kind);
    if (precedence < minPrecedence)
      return lhs;
    const TokenKind opToken = current().kind;
    consume();
    Expr *rhs = parseBinary(precedence + 1);
    const BinaryOp op = binaryOpFor(opToken);
    const Type *type = nullptr;
    switch (op) {
    case BinaryOp::LT:
    case BinaryOp::GT:
    case BinaryOp::LE:
    case BinaryOp::GE:
    case BinaryOp::EQ:
    case BinaryOp::NE:
    case BinaryOp::LAnd:
    case BinaryOp::LOr:
      type = context_.types().intType();
      break;
    default:
      type = arithmeticResultType(lhs->type(), rhs->type());
      break;
    }
    auto *expr = context_.createExpr<BinaryExpr>(op, lhs, rhs, type);
    expr->setRange(SourceRange(lhs->range().begin, rhs->range().end));
    lhs = expr;
  }
}

Expr *Parser::parseUnary() {
  const std::size_t beginToken = pos_;
  switch (current().kind) {
  case TokenKind::Plus:
  case TokenKind::Minus:
  case TokenKind::Tilde:
  case TokenKind::Exclaim:
  case TokenKind::Star:
  case TokenKind::Amp:
  case TokenKind::PlusPlus:
  case TokenKind::MinusMinus: {
    const TokenKind opToken = consume().kind;
    Expr *operand = parseUnary();
    UnaryOp op = UnaryOp::Plus;
    const Type *type = operand->type();
    switch (opToken) {
    case TokenKind::Plus:
      op = UnaryOp::Plus;
      break;
    case TokenKind::Minus:
      op = UnaryOp::Minus;
      break;
    case TokenKind::Tilde:
      op = UnaryOp::Not;
      break;
    case TokenKind::Exclaim:
      op = UnaryOp::LNot;
      type = context_.types().intType();
      break;
    case TokenKind::Star: {
      op = UnaryOp::Deref;
      type = decayedType(operand->type());
      if (const auto *pointer = dynamic_cast<const PointerType *>(type))
        type = pointer->pointee();
      break;
    }
    case TokenKind::Amp:
      op = UnaryOp::AddrOf;
      type = context_.types().pointerTo(operand->type());
      break;
    case TokenKind::PlusPlus:
      op = UnaryOp::PreInc;
      break;
    case TokenKind::MinusMinus:
      op = UnaryOp::PreDec;
      break;
    default:
      break;
    }
    auto *expr = context_.createExpr<UnaryExpr>(op, operand, type);
    expr->setRange(rangeFrom(beginToken));
    return expr;
  }
  case TokenKind::KwSizeof: {
    consume();
    const Type *argument = nullptr;
    if (check(TokenKind::LParen) &&
        (peekAhead().kind == TokenKind::KwVoid ||
         peekAhead().kind == TokenKind::KwBool ||
         peekAhead().kind == TokenKind::KwChar ||
         peekAhead().kind == TokenKind::KwShort ||
         peekAhead().kind == TokenKind::KwInt ||
         peekAhead().kind == TokenKind::KwLong ||
         peekAhead().kind == TokenKind::KwFloat ||
         peekAhead().kind == TokenKind::KwDouble ||
         peekAhead().kind == TokenKind::KwUnsigned ||
         peekAhead().kind == TokenKind::KwSigned ||
         peekAhead().kind == TokenKind::KwStruct ||
         peekAhead().kind == TokenKind::KwConst ||
         (peekAhead().kind == TokenKind::Identifier &&
          typedefs_.count(peekAhead().text)))) {
      consume(); // '('
      auto spec = parseDeclSpec();
      const Type *type =
          spec && spec->type ? spec->type : context_.types().intType();
      bool pointeeConst = spec ? spec->isConst : false;
      type = parseDeclaratorPointers(type, pointeeConst);
      expect(TokenKind::RParen, "to close sizeof");
      argument = type;
    } else {
      Expr *operand = parseUnary();
      argument = operand->type();
    }
    auto *expr = context_.createExpr<SizeofExpr>(
        argument, context_.types().builtin(BuiltinKind::ULong));
    expr->setRange(rangeFrom(beginToken));
    return expr;
  }
  case TokenKind::LParen:
    return parsePostfix(parseCastOrParen());
  default:
    return parsePostfix(parsePrimary());
  }
}

Expr *Parser::parseCastOrParen() {
  const std::size_t beginToken = pos_;
  assert(check(TokenKind::LParen));
  // Lookahead: `(` type-specifier ... `)` is a cast.
  const Token &next = peekAhead();
  const bool looksLikeType =
      next.kind == TokenKind::KwVoid || next.kind == TokenKind::KwBool ||
      next.kind == TokenKind::KwChar || next.kind == TokenKind::KwShort ||
      next.kind == TokenKind::KwInt || next.kind == TokenKind::KwLong ||
      next.kind == TokenKind::KwFloat || next.kind == TokenKind::KwDouble ||
      next.kind == TokenKind::KwUnsigned || next.kind == TokenKind::KwSigned ||
      next.kind == TokenKind::KwStruct || next.kind == TokenKind::KwConst ||
      (next.kind == TokenKind::Identifier && typedefs_.count(next.text));
  if (looksLikeType) {
    consume(); // '('
    auto spec = parseDeclSpec();
    const Type *type =
        spec && spec->type ? spec->type : context_.types().intType();
    bool pointeeConst = spec ? spec->isConst : false;
    type = parseDeclaratorPointers(type, pointeeConst);
    expect(TokenKind::RParen, "to close cast");
    Expr *operand = parseUnary();
    auto *expr = context_.createExpr<CastExpr>(type, operand);
    expr->setRange(rangeFrom(beginToken));
    return expr;
  }
  consume(); // '('
  Expr *inner = parseExpr();
  expect(TokenKind::RParen, "to close parenthesized expression");
  auto *expr = context_.createExpr<ParenExpr>(inner);
  expr->setRange(rangeFrom(beginToken));
  return expr;
}

Expr *Parser::parsePostfix(Expr *base) {
  while (true) {
    const std::size_t beginOffset = base->range().begin.offset;
    switch (current().kind) {
    case TokenKind::LBracket: {
      consume();
      Expr *index = parseExpr();
      expect(TokenKind::RBracket, "to close subscript");
      const Type *elementType = context_.types().intType();
      const Type *baseType = base->type();
      if (const auto *array = dynamic_cast<const ArrayType *>(baseType))
        elementType = array->element();
      else if (const auto *pointer =
                   dynamic_cast<const PointerType *>(baseType))
        elementType = pointer->pointee();
      auto *expr =
          context_.createExpr<ArraySubscriptExpr>(base, index, elementType);
      (void)beginOffset;
      expr->setRange(
          SourceRange(base->range().begin,
                      tokens_[pos_ == 0 ? 0 : pos_ - 1].range().end));
      base = expr;
      continue;
    }
    case TokenKind::LParen: {
      // Call: base must be a simple name.
      std::string calleeName;
      if (const auto *ref =
              dynamic_cast<const DeclRefExpr *>(ignoreParensAndCasts(base))) {
        calleeName = ref->decl() != nullptr ? ref->decl()->name() : "";
      }
      consume();
      std::vector<Expr *> args;
      if (!check(TokenKind::RParen)) {
        do {
          args.push_back(parseAssignment());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "to close call");
      FunctionDecl *callee = nullptr;
      const Type *resultType = nullptr;
      if (!calleeName.empty()) {
        callee = context_.unit().findFunction(calleeName);
        if (callee != nullptr)
          resultType = callee->returnType();
        else
          resultType = builtinCallResultType(calleeName, args);
      }
      if (resultType == nullptr)
        resultType = context_.types().intType();
      auto *expr = context_.createExpr<CallExpr>(calleeName, callee,
                                                 std::move(args), resultType);
      expr->setRange(
          SourceRange(base->range().begin,
                      tokens_[pos_ == 0 ? 0 : pos_ - 1].range().end));
      base = expr;
      continue;
    }
    case TokenKind::Dot:
    case TokenKind::Arrow: {
      const bool isArrow = current().kind == TokenKind::Arrow;
      consume();
      if (!check(TokenKind::Identifier)) {
        error("expected member name");
        return base;
      }
      const std::string member = consume().text;
      const Type *memberType = context_.types().intType();
      const Type *recordCandidate = base->type();
      if (isArrow) {
        if (const auto *pointer =
                dynamic_cast<const PointerType *>(recordCandidate))
          recordCandidate = pointer->pointee();
      }
      if (const auto *record =
              dynamic_cast<const RecordType *>(recordCandidate)) {
        if (const FieldDecl *field = record->decl()->findField(member))
          memberType = field->type;
        else
          error("no field '" + member + "' in " + record->spelling());
      }
      auto *expr =
          context_.createExpr<MemberExpr>(base, member, isArrow, memberType);
      expr->setRange(
          SourceRange(base->range().begin,
                      tokens_[pos_ == 0 ? 0 : pos_ - 1].range().end));
      base = expr;
      continue;
    }
    case TokenKind::PlusPlus:
    case TokenKind::MinusMinus: {
      const UnaryOp op = current().kind == TokenKind::PlusPlus
                             ? UnaryOp::PostInc
                             : UnaryOp::PostDec;
      consume();
      auto *expr = context_.createExpr<UnaryExpr>(op, base, base->type());
      expr->setRange(
          SourceRange(base->range().begin,
                      tokens_[pos_ == 0 ? 0 : pos_ - 1].range().end));
      base = expr;
      continue;
    }
    default:
      return base;
    }
  }
}

Expr *Parser::parsePrimary() {
  const std::size_t beginToken = pos_;
  switch (current().kind) {
  case TokenKind::IntLiteral: {
    const Token token = consume();
    const std::int64_t value = std::strtoll(token.text.c_str(), nullptr, 0);
    auto *expr = context_.createExpr<IntLiteralExpr>(
        value, context_.types().intType());
    expr->setRange(rangeFrom(beginToken));
    return expr;
  }
  case TokenKind::FloatLiteral: {
    const Token token = consume();
    const double value = std::strtod(token.text.c_str(), nullptr);
    const bool isFloat = token.text.find('f') != std::string::npos ||
                         token.text.find('F') != std::string::npos;
    auto *expr = context_.createExpr<FloatLiteralExpr>(
        value, context_.types().builtin(isFloat ? BuiltinKind::Float
                                                : BuiltinKind::Double));
    expr->setRange(rangeFrom(beginToken));
    return expr;
  }
  case TokenKind::CharLiteral: {
    const Token token = consume();
    auto *expr = context_.createExpr<CharLiteralExpr>(
        token.text.empty() ? '\0' : token.text[0],
        context_.types().builtin(BuiltinKind::Char));
    expr->setRange(rangeFrom(beginToken));
    return expr;
  }
  case TokenKind::StringLiteral: {
    const Token token = consume();
    auto *expr = context_.createExpr<StringLiteralExpr>(
        token.text, context_.types().pointerTo(
                        context_.types().builtin(BuiltinKind::Char), true));
    expr->setRange(rangeFrom(beginToken));
    return expr;
  }
  case TokenKind::Identifier: {
    const Token token = consume();
    VarDecl *decl = lookup(token.text);
    const Type *type = nullptr;
    if (decl != nullptr) {
      type = decl->type();
    } else if (context_.unit().findFunction(token.text) != nullptr ||
               builtinCallResultType(token.text, {}) != nullptr ||
               check(TokenKind::LParen)) {
      // Function name in call position: modeled as an untyped DeclRef with a
      // synthetic VarDecl so parsePostfix can recover the name.
      type = context_.types().intType();
      decl = context_.createVar(token.text, type);
    } else {
      error("use of undeclared identifier '" + token.text + "'");
      type = context_.types().intType();
      decl = context_.createVar(token.text, type);
      declare(decl); // avoid cascading errors
    }
    auto *expr = context_.createExpr<DeclRefExpr>(decl, type);
    expr->setRange(rangeFrom(beginToken));
    return expr;
  }
  default:
    error("expected expression, found '" + current().text + "'");
    consume();
    auto *expr = context_.createExpr<IntLiteralExpr>(
        0, context_.types().intType());
    expr->setRange(rangeFrom(beginToken));
    return expr;
  }
}

// ---------------------------------------------------------------------------
// Typing helpers
// ---------------------------------------------------------------------------

const Type *Parser::arithmeticResultType(const Type *lhs,
                                         const Type *rhs) const {
  if (lhs == nullptr)
    return rhs;
  if (rhs == nullptr)
    return lhs;
  // Pointer arithmetic keeps the pointer type.
  if (lhs->isPointer() || lhs->isArray())
    return lhs;
  if (rhs->isPointer() || rhs->isArray())
    return rhs;
  auto rank = [](const Type *type) {
    const auto *builtin = dynamic_cast<const BuiltinType *>(type);
    if (builtin == nullptr)
      return 0;
    switch (builtin->builtinKind()) {
    case BuiltinKind::Double:
      return 7;
    case BuiltinKind::Float:
      return 6;
    case BuiltinKind::ULong:
      return 5;
    case BuiltinKind::Long:
      return 4;
    case BuiltinKind::UInt:
      return 3;
    case BuiltinKind::Int:
      return 2;
    default:
      return 1;
    }
  };
  return rank(lhs) >= rank(rhs) ? lhs : rhs;
}

const Type *Parser::decayedType(const Type *type) {
  if (const auto *array = dynamic_cast<const ArrayType *>(type))
    return context_.types().pointerTo(array->element());
  return type;
}

const Type *Parser::builtinCallResultType(
    const std::string &name, const std::vector<Expr *> &args) const {
  (void)args;
  auto &types = const_cast<TypeContext &>(context_.types());
  if (name == "exp" || name == "sqrt" || name == "fabs" || name == "pow" ||
      name == "log" || name == "sin" || name == "cos" || name == "tan" ||
      name == "floor" || name == "ceil" || name == "fmin" || name == "fmax" ||
      name == "atan" || name == "log2" || name == "cbrt")
    return types.doubleType();
  if (name == "expf" || name == "sqrtf" || name == "fabsf" || name == "powf" ||
      name == "logf" || name == "sinf" || name == "cosf" || name == "fminf" ||
      name == "fmaxf")
    return types.builtin(BuiltinKind::Float);
  if (name == "malloc" || name == "calloc")
    return types.pointerTo(types.voidType());
  if (name == "free" || name == "srand" || name == "memset" ||
      name == "memcpy" || name == "exit")
    return types.voidType();
  if (name == "printf" || name == "rand" || name == "abs" || name == "atoi")
    return types.intType();
  return nullptr;
}

std::optional<std::uint64_t> Parser::foldArrayExtent(Expr *expr,
                                                     std::string &spelling) {
  spelling.clear();
  if (auto value = foldIntegerConstant(expr); value && *value >= 0)
    return static_cast<std::uint64_t>(*value);
  return std::nullopt;
}

bool parseSource(const SourceManager &sourceManager, ASTContext &context,
                 DiagnosticEngine &diags) {
  Parser parser(sourceManager, context, diags);
  return parser.parseTranslationUnit();
}

} // namespace ompdart
