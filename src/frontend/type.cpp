#include "frontend/type.hpp"

#include "frontend/ast.hpp"

namespace ompdart {

bool Type::isFloatingPoint() const {
  if (const auto *builtin = dynamic_cast<const BuiltinType *>(this))
    return builtin->builtinKind() == BuiltinKind::Float ||
           builtin->builtinKind() == BuiltinKind::Double;
  return false;
}

bool Type::isInteger() const {
  if (const auto *builtin = dynamic_cast<const BuiltinType *>(this)) {
    switch (builtin->builtinKind()) {
    case BuiltinKind::Bool:
    case BuiltinKind::Char:
    case BuiltinKind::Short:
    case BuiltinKind::Int:
    case BuiltinKind::UInt:
    case BuiltinKind::Long:
    case BuiltinKind::ULong:
      return true;
    default:
      return false;
    }
  }
  return false;
}

bool Type::isVoid() const {
  if (const auto *builtin = dynamic_cast<const BuiltinType *>(this))
    return builtin->builtinKind() == BuiltinKind::Void;
  return false;
}

std::uint64_t Type::sizeInBytes() const {
  switch (kind()) {
  case TypeKind::Builtin:
    switch (static_cast<const BuiltinType *>(this)->builtinKind()) {
    case BuiltinKind::Void:
      return 0;
    case BuiltinKind::Bool:
    case BuiltinKind::Char:
      return 1;
    case BuiltinKind::Short:
      return 2;
    case BuiltinKind::Int:
    case BuiltinKind::UInt:
    case BuiltinKind::Float:
      return 4;
    case BuiltinKind::Long:
    case BuiltinKind::ULong:
    case BuiltinKind::Double:
      return 8;
    }
    return 0;
  case TypeKind::Pointer:
    return 8;
  case TypeKind::Array: {
    const auto *array = static_cast<const ArrayType *>(this);
    const std::uint64_t elementSize = array->element()->sizeInBytes();
    return array->extent() ? *array->extent() * elementSize : elementSize;
  }
  case TypeKind::Record:
    return static_cast<const RecordType *>(this)->decl()->sizeInBytes();
  }
  return 0;
}

std::string Type::spelling() const {
  switch (kind()) {
  case TypeKind::Builtin:
    switch (static_cast<const BuiltinType *>(this)->builtinKind()) {
    case BuiltinKind::Void:
      return "void";
    case BuiltinKind::Bool:
      return "bool";
    case BuiltinKind::Char:
      return "char";
    case BuiltinKind::Short:
      return "short";
    case BuiltinKind::Int:
      return "int";
    case BuiltinKind::UInt:
      return "unsigned int";
    case BuiltinKind::Long:
      return "long";
    case BuiltinKind::ULong:
      return "unsigned long";
    case BuiltinKind::Float:
      return "float";
    case BuiltinKind::Double:
      return "double";
    }
    return "?";
  case TypeKind::Pointer: {
    const auto *pointer = static_cast<const PointerType *>(this);
    std::string out;
    if (pointer->isPointeeConst())
      out += "const ";
    out += pointer->pointee()->spelling();
    out += " *";
    return out;
  }
  case TypeKind::Array: {
    const auto *array = static_cast<const ArrayType *>(this);
    std::string out = array->element()->spelling();
    out += " [";
    out += array->extentSpelling();
    out += "]";
    return out;
  }
  case TypeKind::Record:
    return "struct " +
           static_cast<const RecordType *>(this)->decl()->name();
  }
  return "?";
}

TypeContext::TypeContext() {
  // Pre-create one instance per builtin kind so pointers compare equal.
  for (int i = 0; i <= static_cast<int>(BuiltinKind::Double); ++i)
    builtins_.push_back(
        std::make_unique<BuiltinType>(static_cast<BuiltinKind>(i)));
}

const BuiltinType *TypeContext::builtin(BuiltinKind kind) const {
  return builtins_[static_cast<std::size_t>(kind)].get();
}

const PointerType *TypeContext::pointerTo(const Type *pointee,
                                          bool pointeeConst) {
  for (const auto &type : owned_) {
    if (const auto *pointer = dynamic_cast<const PointerType *>(type.get()))
      if (pointer->pointee() == pointee &&
          pointer->isPointeeConst() == pointeeConst)
        return pointer;
  }
  auto type = std::make_unique<PointerType>(pointee, pointeeConst);
  const PointerType *raw = type.get();
  owned_.push_back(std::move(type));
  return raw;
}

const ArrayType *TypeContext::arrayOf(const Type *element,
                                      std::optional<std::uint64_t> extent,
                                      std::string extentSpelling) {
  auto type = std::make_unique<ArrayType>(element, extent,
                                          std::move(extentSpelling));
  const ArrayType *raw = type.get();
  owned_.push_back(std::move(type));
  return raw;
}

const RecordType *TypeContext::recordOf(const RecordDecl *decl) {
  for (const auto &type : owned_) {
    if (const auto *record = dynamic_cast<const RecordType *>(type.get()))
      if (record->decl() == decl)
        return record;
  }
  auto type = std::make_unique<RecordType>(decl);
  const RecordType *raw = type.get();
  owned_.push_back(std::move(type));
  return raw;
}

const Type *scalarBaseType(const Type *type) {
  while (type != nullptr) {
    if (const auto *pointer = dynamic_cast<const PointerType *>(type)) {
      type = pointer->pointee();
      continue;
    }
    if (const auto *array = dynamic_cast<const ArrayType *>(type)) {
      type = array->element();
      continue;
    }
    break;
  }
  return type;
}

} // namespace ompdart
