// Recursive-descent parser for the C subset with OpenMP offload pragmas.
// Produces a typed AST with resolved variable references and exact source
// ranges (the rewriter depends on pragma/statement extents being accurate).
//
// Supported surface: global/local variable declarations (builtins, pointers,
// multi-dimensional arrays, structs, const/static/extern), function
// prototypes and definitions, the full C expression grammar (assignment,
// conditional, logical/bitwise/relational/shift/additive/multiplicative,
// unary, postfix call/subscript/member/inc-dec, casts, sizeof), all
// structured statements (if/for/while/do/switch/break/continue/return), and
// `#pragma omp` directives covering Table I of the paper plus target data /
// target update / target enter+exit data.
#pragma once

#include "frontend/ast.hpp"
#include "frontend/lexer.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ompdart {

class Parser {
public:
  Parser(const SourceManager &sourceManager, ASTContext &context,
         DiagnosticEngine &diags);

  /// Parses the whole buffer into `context.unit()`. Returns false when any
  /// error diagnostic was emitted.
  bool parseTranslationUnit();

private:
  // --- token helpers ---
  const Token &current() const { return tokens_[pos_]; }
  const Token &peekAhead(std::size_t n = 1) const;
  Token consume();
  bool check(TokenKind kind) const { return current().kind == kind; }
  bool accept(TokenKind kind);
  bool expect(TokenKind kind, const char *context);
  void error(const std::string &message);
  void skipToRecovery();

  // --- scopes ---
  void pushScope();
  void popScope();
  VarDecl *lookup(const std::string &name) const;
  void declare(VarDecl *var);

  // --- types & declarations ---
  struct DeclSpec {
    const Type *type = nullptr;
    bool isConst = false;
    bool isStatic = false;
    bool isExtern = false;
    bool isTypedef = false;
  };
  bool atTypeSpecifier() const;
  std::optional<DeclSpec> parseDeclSpec();
  const Type *parseDeclaratorPointers(const Type *base, bool pointeeConst);
  void parseTopLevel();
  void parseStructDefinition();
  void parseFunctionOrGlobal(const DeclSpec &spec);
  FunctionDecl *parseFunctionRest(const DeclSpec &spec, const std::string &name,
                                  const Type *declType,
                                  std::size_t beginOffset);
  Stmt *parseDeclStmt();
  VarDecl *parseInitDeclarator(const DeclSpec &spec, bool isGlobal);
  const Type *parseArrayDimensions(const Type *base);

  // --- statements ---
  Stmt *parseStmt();
  Stmt *parseCompound();
  Stmt *parseIf();
  Stmt *parseFor();
  Stmt *parseWhile();
  Stmt *parseDo();
  Stmt *parseSwitch();
  Stmt *parseReturn();
  Stmt *parseOmpDirective();

  // --- OpenMP ---
  std::optional<OmpDirectiveKind> parseOmpDirectiveName();
  bool parseOmpClauses(std::vector<OmpClause> &clauses,
                       OmpDirectiveKind directive);
  bool parseOmpObjectList(std::vector<OmpObject> &objects);
  std::optional<OmpObject> parseOmpObject();
  void skipBalancedParens();

  // --- expressions ---
  Expr *parseExpr();           // includes comma operator
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseBinary(int minPrecedence);
  Expr *parseUnary();
  Expr *parsePostfix(Expr *base);
  Expr *parsePrimary();
  Expr *parseCastOrParen();

  // --- typing helpers ---
  const Type *arithmeticResultType(const Type *lhs, const Type *rhs) const;
  const Type *decayedType(const Type *type);
  const Type *builtinCallResultType(const std::string &name,
                                    const std::vector<Expr *> &args) const;
  std::optional<std::uint64_t> foldArrayExtent(Expr *expr,
                                               std::string &spelling);

  SourceLocation locAt(std::size_t tokenIndex) const;
  SourceRange rangeFrom(std::size_t beginTokenIndex) const;
  std::string textBetween(std::size_t beginOffset,
                          std::size_t endOffset) const;

  const SourceManager &sourceManager_;
  ASTContext &context_;
  DiagnosticEngine &diags_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<std::unordered_map<std::string, VarDecl *>> scopes_;
  std::unordered_map<std::string, RecordDecl *> recordsByName_;
  std::unordered_map<std::string, const Type *> typedefs_;
  FunctionDecl *currentFunction_ = nullptr;
};

/// Convenience wrapper: lex + parse `source`; returns false on error.
bool parseSource(const SourceManager &sourceManager, ASTContext &context,
                 DiagnosticEngine &diags);

} // namespace ompdart
