// Compile-time integer constant folding over the AST. Used by the parser
// (array extents), the array-bounds analysis (loop trip counts, section
// sizes) and the Table IV complexity counters.
#pragma once

#include "frontend/ast.hpp"

#include <cstdint>
#include <optional>

namespace ompdart {

/// Evaluates `expr` as an integer constant if possible. Handles literals,
/// parens, casts, unary +/-/~/!, all arithmetic/bitwise/relational binary
/// operators, ?: with constant condition, and sizeof.
[[nodiscard]] std::optional<std::int64_t> foldIntegerConstant(const Expr *expr);

} // namespace ompdart
