// Lexer for the C subset. Includes a "preprocessor-lite":
//  - `#define NAME <tokens>` object-like macros are recorded and expanded at
//    identifier lookup (expansion carries the use-site location so rewriter
//    edits stay anchored to the original text),
//  - `#include` and unrecognized preprocessor lines are skipped,
//  - `#pragma omp ...` lines are surfaced as PragmaOmp ... PragmaEnd token
//    runs, honoring backslash line continuations.
#pragma once

#include "frontend/token.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace ompdart {

class Lexer {
public:
  Lexer(const SourceManager &sourceManager, DiagnosticEngine &diags);

  /// Lexes and returns the next token (expanding macros).
  Token next();

  /// Lexes the entire buffer; the final token is Eof.
  [[nodiscard]] std::vector<Token> lexAll();

  /// Macros seen so far, name -> replacement tokens. Exposed for tests.
  [[nodiscard]] const std::unordered_map<std::string, std::vector<Token>> &
  macros() const {
    return macros_;
  }

private:
  Token lexToken();
  Token lexIdentifierOrKeyword();
  Token lexNumber();
  Token lexCharLiteral();
  Token lexStringLiteral();
  void handleDirective();
  void handleDefine();
  void skipToEndOfLine();
  void skipWhitespaceAndComments();

  [[nodiscard]] char peek(std::size_t lookahead = 0) const;
  char advance();
  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  [[nodiscard]] Token makeToken(TokenKind kind, std::size_t beginOffset,
                                std::string text);

  const SourceManager &sourceManager_;
  DiagnosticEngine &diags_;
  const std::string &text_;
  /// Forward-moving line lookup for token locations (amortized O(1)).
  LocationCursor cursor_;
  std::size_t pos_ = 0;
  bool atLineStart_ = true;
  bool inPragma_ = false;
  std::unordered_map<std::string, std::vector<Token>> macros_;
  /// Pending macro-expansion tokens, delivered before lexing resumes.
  std::deque<Token> pending_;
};

} // namespace ompdart
