#include "frontend/ast.hpp"

namespace ompdart {

bool isAssignmentOp(BinaryOp op) {
  switch (op) {
  case BinaryOp::Assign:
  case BinaryOp::MulAssign:
  case BinaryOp::DivAssign:
  case BinaryOp::RemAssign:
  case BinaryOp::AddAssign:
  case BinaryOp::SubAssign:
  case BinaryOp::ShlAssign:
  case BinaryOp::ShrAssign:
  case BinaryOp::AndAssign:
  case BinaryOp::XorAssign:
  case BinaryOp::OrAssign:
    return true;
  default:
    return false;
  }
}

bool isCompoundAssignmentOp(BinaryOp op) {
  return isAssignmentOp(op) && op != BinaryOp::Assign;
}

const char *binaryOpSpelling(BinaryOp op) {
  switch (op) {
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::LT:
    return "<";
  case BinaryOp::GT:
    return ">";
  case BinaryOp::LE:
    return "<=";
  case BinaryOp::GE:
    return ">=";
  case BinaryOp::EQ:
    return "==";
  case BinaryOp::NE:
    return "!=";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::LAnd:
    return "&&";
  case BinaryOp::LOr:
    return "||";
  case BinaryOp::Assign:
    return "=";
  case BinaryOp::MulAssign:
    return "*=";
  case BinaryOp::DivAssign:
    return "/=";
  case BinaryOp::RemAssign:
    return "%=";
  case BinaryOp::AddAssign:
    return "+=";
  case BinaryOp::SubAssign:
    return "-=";
  case BinaryOp::ShlAssign:
    return "<<=";
  case BinaryOp::ShrAssign:
    return ">>=";
  case BinaryOp::AndAssign:
    return "&=";
  case BinaryOp::XorAssign:
    return "^=";
  case BinaryOp::OrAssign:
    return "|=";
  case BinaryOp::Comma:
    return ",";
  }
  return "?";
}

const char *unaryOpSpelling(UnaryOp op) {
  switch (op) {
  case UnaryOp::Plus:
    return "+";
  case UnaryOp::Minus:
    return "-";
  case UnaryOp::Not:
    return "~";
  case UnaryOp::LNot:
    return "!";
  case UnaryOp::Deref:
    return "*";
  case UnaryOp::AddrOf:
    return "&";
  case UnaryOp::PreInc:
  case UnaryOp::PostInc:
    return "++";
  case UnaryOp::PreDec:
  case UnaryOp::PostDec:
    return "--";
  }
  return "?";
}

const Expr *ignoreParensAndCasts(const Expr *expr) {
  while (expr != nullptr) {
    if (expr->kind() == ExprKind::Paren) {
      expr = static_cast<const ParenExpr *>(expr)->inner();
      continue;
    }
    if (expr->kind() == ExprKind::Cast) {
      expr = static_cast<const CastExpr *>(expr)->operand();
      continue;
    }
    break;
  }
  return expr;
}

Expr *ignoreParensAndCasts(Expr *expr) {
  return const_cast<Expr *>(
      ignoreParensAndCasts(static_cast<const Expr *>(expr)));
}

VarDecl *referencedVar(const Expr *expr) {
  expr = ignoreParensAndCasts(expr);
  if (expr == nullptr)
    return nullptr;
  if (expr->kind() == ExprKind::DeclRef)
    return static_cast<const DeclRefExpr *>(expr)->decl();
  return nullptr;
}

bool isOffloadKernelDirective(OmpDirectiveKind kind) {
  switch (kind) {
  case OmpDirectiveKind::Target:
  case OmpDirectiveKind::TargetParallel:
  case OmpDirectiveKind::TargetParallelFor:
  case OmpDirectiveKind::TargetParallelForSimd:
  case OmpDirectiveKind::TargetParallelLoop:
  case OmpDirectiveKind::TargetSimd:
  case OmpDirectiveKind::TargetTeams:
  case OmpDirectiveKind::TargetTeamsDistribute:
  case OmpDirectiveKind::TargetTeamsDistributeParallelFor:
  case OmpDirectiveKind::TargetTeamsDistributeParallelForSimd:
  case OmpDirectiveKind::TargetTeamsDistributeSimd:
  case OmpDirectiveKind::TargetTeamsLoop:
    return true;
  case OmpDirectiveKind::TargetData:
  case OmpDirectiveKind::TargetEnterData:
  case OmpDirectiveKind::TargetExitData:
  case OmpDirectiveKind::TargetUpdate:
  case OmpDirectiveKind::ParallelFor:
    return false;
  }
  return false;
}

const char *directiveSpelling(OmpDirectiveKind kind) {
  switch (kind) {
  case OmpDirectiveKind::Target:
    return "target";
  case OmpDirectiveKind::TargetParallel:
    return "target parallel";
  case OmpDirectiveKind::TargetParallelFor:
    return "target parallel for";
  case OmpDirectiveKind::TargetParallelForSimd:
    return "target parallel for simd";
  case OmpDirectiveKind::TargetParallelLoop:
    return "target parallel loop";
  case OmpDirectiveKind::TargetSimd:
    return "target simd";
  case OmpDirectiveKind::TargetTeams:
    return "target teams";
  case OmpDirectiveKind::TargetTeamsDistribute:
    return "target teams distribute";
  case OmpDirectiveKind::TargetTeamsDistributeParallelFor:
    return "target teams distribute parallel for";
  case OmpDirectiveKind::TargetTeamsDistributeParallelForSimd:
    return "target teams distribute parallel for simd";
  case OmpDirectiveKind::TargetTeamsDistributeSimd:
    return "target teams distribute simd";
  case OmpDirectiveKind::TargetTeamsLoop:
    return "target teams loop";
  case OmpDirectiveKind::TargetData:
    return "target data";
  case OmpDirectiveKind::TargetEnterData:
    return "target enter data";
  case OmpDirectiveKind::TargetExitData:
    return "target exit data";
  case OmpDirectiveKind::TargetUpdate:
    return "target update";
  case OmpDirectiveKind::ParallelFor:
    return "parallel for";
  }
  return "?";
}

bool varDeclBefore(const VarDecl *a, const VarDecl *b) {
  if (a == b)
    return false;
  if (a == nullptr || b == nullptr)
    return b != nullptr; // nulls last
  // SourceLocation::kInvalid is the max offset, so undeclared (synthesized)
  // variables naturally sort last.
  if (a->range().begin.offset != b->range().begin.offset)
    return a->range().begin.offset < b->range().begin.offset;
  return a->name() < b->name();
}

const char *mapTypeSpelling(OmpMapType type) {
  switch (type) {
  case OmpMapType::To:
    return "to";
  case OmpMapType::From:
    return "from";
  case OmpMapType::ToFrom:
    return "tofrom";
  case OmpMapType::Alloc:
    return "alloc";
  case OmpMapType::Release:
    return "release";
  case OmpMapType::Delete:
    return "delete";
  }
  return "?";
}

} // namespace ompdart
