// Plan-mutation battery for the checker's soundness gate.
//
// Each mutation takes a correct Mapping IR and breaks exactly one transfer
// decision in a way that mirrors a real planner bug class: dropping a
// from-leg loses a copy-back, dropping an update loses a refresh, weakening
// a map type loses a copy-in, shifting an update insertion point reorders a
// refresh against the access it serves, zeroing an entry count breaks the
// refcount shape, and flipping the present contract claims warmth that the
// entry accounting does not prove. bench_check applies every enumerable
// mutant of every corpus plan and requires the checker to flag >= 99% of
// them, cross-checked against the dynamic oracle's verdict on the same
// mutants (every oracle-failing mutant MUST be flagged; a flagged mutant
// the oracle happens to pass is a latent issue the executed trace did not
// reach — dead transfers never corrupt output, they only waste bytes).
//
// Enumeration is deliberately conservative about equivalent mutants: a
// mutation is only generated where the changed decision is observable
// (e.g. from-legs only weaken on regions whose data outlives them), so the
// kill-rate denominator measures real bugs, not no-op edits.
#pragma once

#include "mapping/ir.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace ompdart::check {

/// One single-decision break of a Mapping IR.
struct Mutation {
  enum class Kind {
    DropFromLeg,    ///< ToFrom -> To, From -> Alloc (lose the copy-back)
    DropUpdate,     ///< remove one target-update directive
    WeakenMapType,  ///< To -> Alloc, ToFrom -> From (lose the copy-in)
    ShiftUpdate,    ///< move an update across its anchor (Before <-> After,
                    ///< BodyBegin -> Before, BodyEnd -> After)
    ZeroEntryCount, ///< region.entryCount = 0 (refcount shape break)
    BreakPresent,   ///< toggle the present <-> coldEntries==0 contract
  };

  Kind kind = Kind::DropFromLeg;
  std::size_t region = 0; ///< index into MappingIr::regions
  std::size_t item = 0;   ///< map/update index within the region (when used)

  /// Human-readable label, e.g. "drop-from-leg r0 map[a]".
  [[nodiscard]] std::string describe(const ir::MappingIr &ir) const;
};

[[nodiscard]] const char *mutationKindName(Mutation::Kind kind);

/// All applicable single-decision mutations of `ir`, in deterministic
/// order. Empty for plans with no regions.
[[nodiscard]] std::vector<Mutation>
enumerateMutations(const ir::MappingIr &ir);

/// Applies one mutation to a copy of `ir`. The input is never modified.
[[nodiscard]] ir::MappingIr applyMutation(const ir::MappingIr &ir,
                                          const Mutation &mutation);

} // namespace ompdart::check
