// Static plan-safety findings: the value-semantic result of the `check`
// pipeline stage. Kept deliberately light (no AST or CFG dependencies) so
// `driver/report.hpp` can embed a CheckResult in the per-session Report and
// round-trip it through `--emit=json` like every other stage artifact.
//
// Each finding carries a stable machine-readable code (the table below is
// documented in the README), the symbol and function it concerns, and a
// source anchor into the original buffer.
//
//   stale-device-read   a kernel (or update-from / region-exit copy-out)
//                       consumes the device copy after the host produced a
//                       newer value that was never synchronized down
//   stale-host-read     host code (or an update-to / region-entry copy-in,
//                       or code after the region) consumes the host copy
//                       after the device produced a newer value that was
//                       never copied back
//   dead-transfer       a map leg that provably moves no live data: a
//                       to-leg whose device copy is never read, or a
//                       from-leg that is never device-written or whose
//                       copied-out value is never host-read
//   double-transfer     an update directive every execution of which copies
//                       data that is already identical on both sides
//   exit-without-entry  reference-count shape mismatch in the plan itself:
//                       zero region entries, more cold entries than
//                       entries, or a present/cold-entry contradiction
#pragma once

#include "support/json.hpp"
#include "support/source_location.hpp"

#include <optional>
#include <string>
#include <vector>

namespace ompdart::check {

enum class FindingCode {
  StaleDeviceRead,
  StaleHostRead,
  DeadTransfer,
  DoubleTransfer,
  ExitWithoutEntry,
};

[[nodiscard]] const char *findingCodeName(FindingCode code);
[[nodiscard]] std::optional<FindingCode>
findingCodeFromName(const std::string &name);

/// One consistency violation the checker proved against the plan.
struct Finding {
  FindingCode code = FindingCode::StaleDeviceRead;
  std::string symbol;   ///< variable name the finding concerns
  std::string function; ///< function owning the region
  SourceLocation location;
  std::string message; ///< human-readable explanation (code not included)

  [[nodiscard]] json::Value toJson() const;
  [[nodiscard]] static std::optional<Finding>
  fromJson(const json::Value &value);

  [[nodiscard]] bool operator==(const Finding &other) const {
    return code == other.code && symbol == other.symbol &&
           function == other.function &&
           location.offset == other.location.offset &&
           location.line == other.location.line &&
           location.column == other.location.column &&
           message == other.message;
  }
};

/// Result of the check stage for one translation unit.
struct CheckResult {
  std::vector<Finding> findings;
  unsigned regionsChecked = 0;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] bool hasCode(FindingCode code) const {
    for (const Finding &finding : findings)
      if (finding.code == code)
        return true;
    return false;
  }

  [[nodiscard]] json::Value toJson() const;
  [[nodiscard]] static std::optional<CheckResult>
  fromJson(const json::Value &value);

  [[nodiscard]] bool operator==(const CheckResult &other) const {
    return findings == other.findings &&
           regionsChecked == other.regionsChecked;
  }
};

} // namespace ompdart::check
