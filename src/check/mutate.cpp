#include "check/mutate.hpp"

namespace ompdart::check {

namespace {

using ir::MapItem;
using ir::MappingIr;
using ir::MapType;
using ir::Region;
using ir::UpdateItem;
using ir::UpdatePlacement;

/// A from-leg drop or map-type weakening is only a real bug when the lost
/// movement was load-bearing; items the planner marked warm (coldEntries ==
/// 0) move nothing at entry/exit themselves, so breaking them is invisible
/// to any execution. Skip those to keep the battery free of equivalent
/// mutants.
bool coldItem(const MapItem &map) { return map.coldEntries > 0; }

} // namespace

const char *mutationKindName(Mutation::Kind kind) {
  switch (kind) {
  case Mutation::Kind::DropFromLeg:
    return "drop-from-leg";
  case Mutation::Kind::DropUpdate:
    return "drop-update";
  case Mutation::Kind::WeakenMapType:
    return "weaken-map-type";
  case Mutation::Kind::ShiftUpdate:
    return "shift-update";
  case Mutation::Kind::ZeroEntryCount:
    return "zero-entry-count";
  case Mutation::Kind::BreakPresent:
    return "break-present";
  }
  return "?";
}

std::string Mutation::describe(const MappingIr &ir) const {
  std::string label = mutationKindName(kind);
  label += " r" + std::to_string(region);
  if (region >= ir.regions.size())
    return label;
  const Region &reg = ir.regions[region];
  switch (kind) {
  case Kind::DropFromLeg:
  case Kind::WeakenMapType:
  case Kind::BreakPresent:
    if (item < reg.maps.size())
      label += " map[" + reg.maps[item].item + "]";
    break;
  case Kind::DropUpdate:
  case Kind::ShiftUpdate:
    if (item < reg.updates.size())
      label += " update[" + reg.updates[item].item + "]";
    break;
  case Kind::ZeroEntryCount:
    break;
  }
  return label;
}

std::vector<Mutation> enumerateMutations(const MappingIr &ir) {
  std::vector<Mutation> mutations;
  for (std::size_t r = 0; r < ir.regions.size(); ++r) {
    const Region &region = ir.regions[r];
    for (std::size_t m = 0; m < region.maps.size(); ++m) {
      const MapItem &map = region.maps[m];
      if (!coldItem(map))
        continue;
      if (map.type == MapType::ToFrom || map.type == MapType::From)
        mutations.push_back({Mutation::Kind::DropFromLeg, r, m});
      if (map.type == MapType::To || map.type == MapType::ToFrom)
        mutations.push_back({Mutation::Kind::WeakenMapType, r, m});
      // The present contract: present <=> every entry is warm. Claiming
      // presence on a cold item is always a shape break.
      mutations.push_back({Mutation::Kind::BreakPresent, r, m});
    }
    for (std::size_t u = 0; u < region.updates.size(); ++u) {
      mutations.push_back({Mutation::Kind::DropUpdate, r, u});
      mutations.push_back({Mutation::Kind::ShiftUpdate, r, u});
    }
    if (region.entryCount > 0)
      mutations.push_back({Mutation::Kind::ZeroEntryCount, r, 0});
  }
  return mutations;
}

MappingIr applyMutation(const MappingIr &ir, const Mutation &mutation) {
  MappingIr mutant = ir;
  if (mutation.region >= mutant.regions.size())
    return mutant;
  Region &region = mutant.regions[mutation.region];
  switch (mutation.kind) {
  case Mutation::Kind::DropFromLeg: {
    if (mutation.item >= region.maps.size())
      break;
    MapItem &map = region.maps[mutation.item];
    if (map.type == MapType::ToFrom)
      map.type = MapType::To;
    else if (map.type == MapType::From)
      map.type = MapType::Alloc;
    break;
  }
  case Mutation::Kind::WeakenMapType: {
    if (mutation.item >= region.maps.size())
      break;
    MapItem &map = region.maps[mutation.item];
    if (map.type == MapType::ToFrom)
      map.type = MapType::From;
    else if (map.type == MapType::To)
      map.type = MapType::Alloc;
    break;
  }
  case Mutation::Kind::DropUpdate:
    if (mutation.item < region.updates.size())
      region.updates.erase(region.updates.begin() +
                           static_cast<std::ptrdiff_t>(mutation.item));
    break;
  case Mutation::Kind::ShiftUpdate: {
    if (mutation.item >= region.updates.size())
      break;
    UpdateItem &update = region.updates[mutation.item];
    switch (update.placement) {
    case UpdatePlacement::Before:
      update.placement = UpdatePlacement::After;
      break;
    case UpdatePlacement::After:
      update.placement = UpdatePlacement::Before;
      break;
    // Body placements shift OUT of the loop (the per-iteration refresh
    // becomes a one-shot), the classic braceless-body regression. The
    // reverse flip (BodyBegin <-> BodyEnd) is often equivalent for
    // loop-carried updates, so it is not generated.
    case UpdatePlacement::BodyBegin:
      update.placement = UpdatePlacement::Before;
      update.hoisted = false;
      break;
    case UpdatePlacement::BodyEnd:
      update.placement = UpdatePlacement::After;
      update.hoisted = false;
      break;
    }
    break;
  }
  case Mutation::Kind::ZeroEntryCount:
    region.entryCount = 0;
    break;
  case Mutation::Kind::BreakPresent: {
    if (mutation.item >= region.maps.size())
      break;
    MapItem &map = region.maps[mutation.item];
    map.modifiers.present = !map.modifiers.present;
    break;
  }
  }
  return mutant;
}

} // namespace ompdart::check
