// Static plan-safety checker: flow-sensitive host/device data-consistency
// analysis over a Mapping IR (the `check` pipeline stage).
//
// The checker re-walks each planned region with the plan OVERLAID as
// transfer functions: map to/from/alloc legs seed the per-variable abstract
// state at region entry, `target update` items apply at their anchors, and
// kernel reads/writes (from the interprocedurally augmented access stream)
// plus host statements transform it. Any access that consumes a copy the
// plan left stale is a finding.
//
// The abstract domain is a powerset over five per-path elements
// (see checker.cpp): the planner's validity walk AND-merges a must-valid
// bit at joins, and the powerset union preserves exactly that information
// ("some element has an invalid host copy" ⟺ the planner's merged
// hostValid bit is false), so a plan produced by the planner walks through
// the checker with zero findings — the precision gate bench_check enforces
// over the fuzz corpus and the paper benchmarks. Dropping, weakening, or
// shifting any transfer of a correct plan breaks a consistency proof along
// some path and surfaces as a coded finding (the soundness gate).
//
// The checker deliberately shares the planner's extent resolution
// (analysis/extent.hpp) and full-coverage write proofs: a checker that
// re-derived extents its own way would disagree with the planner precisely
// on the programs where inference matters.
#pragma once

#include "analysis/interproc.hpp"
#include "analysis/summary.hpp"
#include "cfg/cfg.hpp"
#include "check/finding.hpp"
#include "frontend/ast.hpp"
#include "mapping/ir.hpp"

#include <memory>
#include <vector>

namespace ompdart::check {

/// Checks `ir` against the program it was planned for. `cfgs` must be the
/// AST-CFGs of `unit` and `interproc` its interprocedural result (the same
/// artifacts the planner consumed). Regions whose function, anchors, or
/// symbols cannot be resolved against the unit are skipped, not flagged —
/// the checker never guesses.
[[nodiscard]] CheckResult
checkPlan(const TranslationUnit &unit,
          const std::vector<std::unique_ptr<AstCfg>> &cfgs,
          const InterproceduralResult &interproc, const ir::MappingIr &ir,
          const summary::TuImports *imports = nullptr);

} // namespace ompdart::check
