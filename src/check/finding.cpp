#include "check/finding.hpp"

namespace ompdart::check {

const char *findingCodeName(FindingCode code) {
  switch (code) {
  case FindingCode::StaleDeviceRead:
    return "stale-device-read";
  case FindingCode::StaleHostRead:
    return "stale-host-read";
  case FindingCode::DeadTransfer:
    return "dead-transfer";
  case FindingCode::DoubleTransfer:
    return "double-transfer";
  case FindingCode::ExitWithoutEntry:
    return "exit-without-entry";
  }
  return "unknown";
}

std::optional<FindingCode> findingCodeFromName(const std::string &name) {
  static const FindingCode codes[] = {
      FindingCode::StaleDeviceRead, FindingCode::StaleHostRead,
      FindingCode::DeadTransfer, FindingCode::DoubleTransfer,
      FindingCode::ExitWithoutEntry};
  for (const FindingCode code : codes)
    if (name == findingCodeName(code))
      return code;
  return std::nullopt;
}

json::Value Finding::toJson() const {
  json::Value out = json::Value::object();
  out.set("code", findingCodeName(code));
  out.set("symbol", symbol);
  out.set("function", function);
  if (location.isValid()) {
    out.set("offset", static_cast<std::uint64_t>(location.offset));
    out.set("line", location.line);
    out.set("column", location.column);
  }
  out.set("message", message);
  return out;
}

std::optional<Finding> Finding::fromJson(const json::Value &value) {
  if (!value.isObject())
    return std::nullopt;
  const std::optional<FindingCode> code =
      findingCodeFromName(value.stringOr("code"));
  if (!code)
    return std::nullopt;
  Finding finding;
  finding.code = *code;
  finding.symbol = value.stringOr("symbol");
  finding.function = value.stringOr("function");
  if (value.find("offset") != nullptr) {
    finding.location.offset =
        static_cast<std::size_t>(value.uintOr("offset"));
    finding.location.line = static_cast<unsigned>(value.uintOr("line"));
    finding.location.column = static_cast<unsigned>(value.uintOr("column"));
  }
  finding.message = value.stringOr("message");
  return finding;
}

json::Value CheckResult::toJson() const {
  json::Value out = json::Value::object();
  out.set("regionsChecked", regionsChecked);
  json::Value list = json::Value::array();
  for (const Finding &finding : findings)
    list.push(finding.toJson());
  out.set("findings", std::move(list));
  return out;
}

std::optional<CheckResult> CheckResult::fromJson(const json::Value &value) {
  if (!value.isObject())
    return std::nullopt;
  CheckResult result;
  result.regionsChecked =
      static_cast<unsigned>(value.uintOr("regionsChecked"));
  if (const json::Value *list = value.find("findings")) {
    for (const json::Value &entry : list->items()) {
      std::optional<Finding> finding = Finding::fromJson(entry);
      if (!finding)
        return std::nullopt;
      result.findings.push_back(std::move(*finding));
    }
  }
  return result;
}

} // namespace ompdart::check
