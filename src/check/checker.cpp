#include "check/checker.hpp"

#include "analysis/bounds.hpp"
#include "analysis/extent.hpp"
#include "analysis/liveness.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

namespace ompdart::check {

namespace {

// Abstract domain: a powerset over per-path validity elements. Each element
// describes the host/device copies of one variable along some control-flow
// path reaching the current point; the state is the union over all merged
// paths. The planner's validity walk AND-merges a must-valid bit at joins;
// the union preserves exactly that ("some element leaves the host copy
// invalid" ⟺ the planner's merged hostValid bit is false), so flagging at
// consumption points mirrors the planner's insertion points and correct
// plans check clean.
enum : unsigned {
  kBoth = 1u << 0,      ///< both copies hold the current value
  kHostOnlyA = 1u << 1, ///< host valid; device never initialized (alloc/from)
  kHostOnlyW = 1u << 2, ///< host valid; device stale after a host write
  kDevOnly = 1u << 3,   ///< device valid; host stale after a device write
  kCorrupt = 1u << 4,   ///< neither copy holds the full current value
};
/// Elements whose HOST copy is not current (a host read would be stale).
constexpr unsigned kHostStale = kDevOnly | kCorrupt;
/// Elements whose DEVICE copy is not current (a kernel read would be stale).
constexpr unsigned kDevStale = kHostOnlyA | kHostOnlyW | kCorrupt;
/// Device-stale elements that carry a post-entry host write. Region-exit
/// from-legs flag only these: zero-trip-loop entry merges legitimately
/// leave kHostOnlyA alive at the exit of correct plans (the planner
/// accepts that corner), so the uninitialized-device element alone is not
/// evidence of a plan bug at the region boundary. Mid-region update-from
/// applications DO flag kHostOnlyA — see applyUpdate.
constexpr unsigned kDevStaleWritten = kHostOnlyW | kCorrupt;

using AbsState = std::map<VarDecl *, unsigned>;

/// Whether a loop/branch statement's source range contains another's.
bool contains(const Stmt *outer, const Stmt *inner) {
  return outer != nullptr && inner != nullptr &&
         outer->range().contains(inner->range());
}

/// One resolved `target update` insertion with its usefulness accounting.
struct UpdateSite {
  const ir::UpdateItem *item = nullptr;
  VarDecl *var = nullptr;
  const Stmt *anchor = nullptr;
  bool applied = false;
  /// Some application saw a non-Both element — the transfer moved data that
  /// was not already in sync somewhere.
  bool nonRedundant = false;
};

/// Checks one IR region against its function. Mirrors the planner's
/// structured validity walk statement-for-statement (planner.cpp walkStmt):
/// identical traversal order, identical join points, identical coverage
/// proofs — divergence between the two walks is exactly what would turn
/// into false positives.
class RegionChecker {
public:
  RegionChecker(const TranslationUnit &unit, const AstCfg &cfg,
                const FunctionAccessInfo &accesses,
                const InterproceduralResult &interproc,
                const ir::MappingIr &ir, const ir::Region &region,
                ExtentResolver &extents, CheckResult &result)
      : unit_(unit), cfg_(cfg), accesses_(accesses), interproc_(interproc),
        ir_(ir), region_(region), extents_(extents), result_(result),
        fn_(cfg.function()), liveness_(cfg, accesses) {}

  /// Resolves anchors/symbols and runs the walk. Returns false when the
  /// region cannot be resolved against the unit (nothing is flagged then).
  bool run() {
    buildStmtIndex(fn_->body());
    buildVarIndex();
    startStmt_ = resolveAnchor(region_.start);
    endStmt_ = resolveAnchor(region_.end);
    if (startStmt_ == nullptr || endStmt_ == nullptr)
      return false;
    regionEndOffset_ = endStmt_->range().end.offset;
    if (!resolveItems())
      return false;
    extents_.setFunctionContext(&accesses_, &cfg_);

    // Drive the same region-locating descent the planner uses: the region
    // statements are consecutive children of one compound.
    visit(fn_->body());
    if (!exited_ && entered_)
      applyRegionExit(); // defensive: malformed anchors
    reportUpdateAccounting();
    return entered_;
  }

private:
  // ---- resolution -------------------------------------------------------

  void buildStmtIndex(const Stmt *stmt) {
    if (stmt == nullptr)
      return;
    const SourceRange range = stmt->range();
    if (range.isValid())
      stmtsByRange_.emplace(
          std::make_pair(range.begin.offset, range.end.offset), stmt);
    switch (stmt->kind()) {
    case StmtKind::Compound:
      for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
        buildStmtIndex(sub);
      return;
    case StmtKind::If: {
      const auto *ifStmt = static_cast<const IfStmt *>(stmt);
      buildStmtIndex(ifStmt->thenStmt());
      buildStmtIndex(ifStmt->elseStmt());
      return;
    }
    case StmtKind::For: {
      const auto *forStmt = static_cast<const ForStmt *>(stmt);
      buildStmtIndex(forStmt->init());
      buildStmtIndex(forStmt->body());
      return;
    }
    case StmtKind::While:
      buildStmtIndex(static_cast<const WhileStmt *>(stmt)->body());
      return;
    case StmtKind::Do:
      buildStmtIndex(static_cast<const DoStmt *>(stmt)->body());
      return;
    case StmtKind::Switch:
      buildStmtIndex(static_cast<const SwitchStmt *>(stmt)->body());
      return;
    case StmtKind::Case:
      buildStmtIndex(static_cast<const CaseStmt *>(stmt)->sub());
      return;
    case StmtKind::Default:
      buildStmtIndex(static_cast<const DefaultStmt *>(stmt)->sub());
      return;
    case StmtKind::OmpDirective:
      buildStmtIndex(
          static_cast<const OmpDirectiveStmt *>(stmt)->associated());
      return;
    default:
      return;
    }
  }

  void indexVar(VarDecl *var) {
    if (var == nullptr)
      return;
    const SourceRange range =
        var->declStmtRange().isValid() ? var->declStmtRange() : var->range();
    varsByNameAndOffset_.emplace(
        std::make_pair(var->name(), range.begin.offset), var);
  }

  void collectDecls(const Stmt *stmt) {
    if (stmt == nullptr)
      return;
    if (stmt->kind() == StmtKind::Decl) {
      for (VarDecl *var : static_cast<const DeclStmt *>(stmt)->decls())
        indexVar(var);
      return;
    }
    switch (stmt->kind()) {
    case StmtKind::Compound:
      for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
        collectDecls(sub);
      return;
    case StmtKind::If: {
      const auto *ifStmt = static_cast<const IfStmt *>(stmt);
      collectDecls(ifStmt->thenStmt());
      collectDecls(ifStmt->elseStmt());
      return;
    }
    case StmtKind::For: {
      const auto *forStmt = static_cast<const ForStmt *>(stmt);
      collectDecls(forStmt->init());
      collectDecls(forStmt->body());
      return;
    }
    case StmtKind::While:
      collectDecls(static_cast<const WhileStmt *>(stmt)->body());
      return;
    case StmtKind::Do:
      collectDecls(static_cast<const DoStmt *>(stmt)->body());
      return;
    case StmtKind::Switch:
      collectDecls(static_cast<const SwitchStmt *>(stmt)->body());
      return;
    case StmtKind::Case:
      collectDecls(static_cast<const CaseStmt *>(stmt)->sub());
      return;
    case StmtKind::Default:
      collectDecls(static_cast<const DefaultStmt *>(stmt)->sub());
      return;
    case StmtKind::OmpDirective:
      collectDecls(static_cast<const OmpDirectiveStmt *>(stmt)->associated());
      return;
    default:
      return;
    }
  }

  void buildVarIndex() {
    for (VarDecl *var : unit_.globals)
      indexVar(var);
    for (VarDecl *param : fn_->params())
      indexVar(param);
    collectDecls(fn_->body());
  }

  const Stmt *resolveAnchor(const ir::StmtAnchor &anchor) const {
    auto it = stmtsByRange_.find(
        std::make_pair(anchor.beginOffset, anchor.endOffset));
    return it != stmtsByRange_.end() ? it->second : nullptr;
  }

  VarDecl *resolveSymbol(ir::SymbolId id) const {
    const ir::Symbol *sym = ir_.symbol(id);
    if (sym == nullptr)
      return nullptr;
    auto it = varsByNameAndOffset_.find(
        std::make_pair(sym->name, sym->declOffset));
    return it != varsByNameAndOffset_.end() ? it->second : nullptr;
  }

  /// Resolves map/update/firstprivate items to their VarDecls and anchors.
  bool resolveItems() {
    for (const ir::MapItem &item : region_.maps) {
      VarDecl *var = resolveSymbol(item.symbol);
      if (var == nullptr)
        return false;
      mapVars_.push_back({&item, var});
    }
    for (const ir::FirstprivateItem &item : region_.firstprivates)
      if (VarDecl *var = resolveSymbol(item.symbol))
        firstprivate_.insert(var);
    std::set<VarDecl *> mapped;
    for (const auto &[item, var] : mapVars_)
      mapped.insert(var);
    for (const ir::UpdateItem &item : region_.updates) {
      VarDecl *var = resolveSymbol(item.symbol);
      const Stmt *anchor = resolveAnchor(item.anchor);
      if (var == nullptr || anchor == nullptr)
        return false;
      // An update moving data for a symbol the region never maps has no
      // device allocation to address — its transfer fires against an
      // absent mapping.
      if (mapped.count(var) == 0) {
        report(FindingCode::ExitWithoutEntry, var, anchorLocation(item),
               "update '" + item.item +
                   "' targets a symbol the region never maps");
        continue;
      }
      updateSites_.push_back(UpdateSite{&item, var, anchor, false, false});
    }
    for (std::size_t i = 0; i < updateSites_.size(); ++i)
      updatesByAnchor_[std::make_pair(
                           updateSites_[i].anchor,
                           static_cast<int>(updateSites_[i].item->placement))]
          .push_back(i);
    return true;
  }

  // ---- findings ---------------------------------------------------------

  static SourceLocation anchorLocation(const ir::UpdateItem &item) {
    SourceLocation loc;
    loc.offset = item.anchor.beginOffset;
    loc.line = item.anchor.line;
    loc.column = 1;
    return loc;
  }

  SourceLocation regionLocation() const {
    SourceLocation loc;
    loc.offset = region_.start.beginOffset;
    loc.line = region_.start.line;
    loc.column = 1;
    return loc;
  }

  void report(FindingCode code, const VarDecl *var, SourceLocation loc,
              std::string message) {
    const std::string symbol = var != nullptr ? var->name() : std::string();
    if (!reported_
             .emplace(static_cast<int>(code), symbol,
                      loc.isValid() ? loc.offset
                                    : static_cast<std::size_t>(0))
             .second)
      return;
    Finding finding;
    finding.code = code;
    finding.symbol = symbol;
    finding.function = fn_->name();
    finding.location = loc;
    finding.message = std::move(message);
    result_.findings.push_back(std::move(finding));
  }

  // ---- region entry / exit ---------------------------------------------

  void applyRegionEntry() {
    entered_ = true;
    if (region_.entryCount == 0)
      report(FindingCode::ExitWithoutEntry, nullptr, regionLocation(),
             "region entry count is zero: its exit transfers have no "
             "matching entry");
    for (const auto &[item, var] : mapVars_) {
      const bool presentLike = item->modifiers.present;
      if (presentLike != (item->coldEntries == 0))
        report(FindingCode::ExitWithoutEntry, var, regionLocation(),
               "map item '" + item->item +
                   "' is inconsistent: present modifier and cold-entry "
                   "count disagree");
      if (item->coldEntries > region_.entryCount)
        report(FindingCode::ExitWithoutEntry, var, regionLocation(),
               "map item '" + item->item + "' claims " +
                   std::to_string(item->coldEntries) +
                   " cold entries but the region enters only " +
                   std::to_string(region_.entryCount) + " times");
      // Warm items (already present on the device when this region runs)
      // reference-count through entry/exit without copying; their legs were
      // justified by the enclosing analysis, so both copies count as valid
      // and the exit checks stay silent for them.
      if (presentLike || item->coldEntries == 0) {
        warm_.insert(var);
        state_[var] = kBoth;
        continue;
      }
      switch (item->type) {
      case ir::MapType::To:
      case ir::MapType::ToFrom:
        state_[var] = kBoth;
        break;
      default: // Alloc / From: no entry copy, device uninitialized
        state_[var] = kHostOnlyA;
        break;
      }
    }
  }

  bool liveAfterRegion(VarDecl *var) const {
    // Mirror of the planner's region-exit liveness answer (planner.cpp):
    // globals escape except inside main (nothing runs after it returns and
    // the augmented event stream already covers callees); otherwise scan
    // for host reads after the region end.
    const bool preciseGlobals = fn_->name() == "main" && var->isGlobal();
    bool liveAfter = !preciseGlobals && liveness_.escapes(var);
    if (!liveAfter) {
      for (const AccessEvent &event : accesses_.events) {
        if (event.var != var || event.onDevice || event.stmt == nullptr)
          continue;
        if (event.kind != AccessKind::Read &&
            event.kind != AccessKind::Unknown)
          continue;
        if (!event.isDataAccess())
          continue;
        if (event.stmt->range().begin.offset >= regionEndOffset_) {
          liveAfter = true;
          break;
        }
      }
    }
    return liveAfter;
  }

  void applyRegionExit() {
    exited_ = true;
    SourceLocation endLoc;
    endLoc.offset = region_.end.beginOffset;
    endLoc.line = region_.end.endLine;
    endLoc.column = 1;
    for (const auto &[item, var] : mapVars_) {
      if (warm_.count(var) != 0)
        continue;
      const unsigned elems = state_[var];
      const bool toLeg =
          item->type == ir::MapType::To || item->type == ir::MapType::ToFrom;
      const bool fromLeg = item->type == ir::MapType::From ||
                           item->type == ir::MapType::ToFrom;
      const bool seenRead = deviceReadSeen_.count(var) != 0;
      const bool seenWrite = deviceWriteSeen_.count(var) != 0;
      if (fromLeg) {
        if ((elems & kDevStaleWritten) != 0)
          report(FindingCode::StaleDeviceRead, var, endLoc,
                 "region exit copies '" + item->item +
                     "' out of a device copy that misses a host write made "
                     "inside the region");
        if (!seenWrite)
          report(FindingCode::DeadTransfer, var, endLoc,
                 "from-leg for '" + item->item +
                     "' copies out data no kernel ever writes");
        else if (!liveAfterRegion(var))
          report(FindingCode::DeadTransfer, var, endLoc,
                 "from-leg for '" + item->item +
                     "' copies out a value the host never reads after the "
                     "region");
      } else if ((elems & kHostStale) != 0 && liveAfterRegion(var)) {
        report(FindingCode::StaleHostRead, var, endLoc,
               "'" + item->item +
                   "' is read on the host after the region but its last "
                   "value lives only on the device (no from-leg)");
      }
      if (toLeg && !seenRead)
        report(FindingCode::DeadTransfer, var, endLoc,
               "to-leg for '" + item->item +
                   "' copies in data nothing on the device consumes");
    }
  }

  void reportUpdateAccounting() {
    for (const UpdateSite &site : updateSites_) {
      if (!site.applied || site.nonRedundant || warm_.count(site.var) != 0)
        continue;
      report(FindingCode::DoubleTransfer, site.var,
             anchorLocation(*site.item),
             "update '" + site.item->item +
                 "' always fires with both copies already in sync");
    }
  }

  // ---- update application ----------------------------------------------

  void applyUpdates(const Stmt *stmt, ir::UpdatePlacement placement) {
    auto it = updatesByAnchor_.find(
        std::make_pair(stmt, static_cast<int>(placement)));
    if (it == updatesByAnchor_.end())
      return;
    for (const std::size_t index : it->second)
      applyUpdate(updateSites_[index]);
  }

  void applyUpdate(UpdateSite &site) {
    auto it = state_.find(site.var);
    if (it == state_.end())
      return;
    unsigned &elems = it->second;
    site.applied = true;
    if ((elems & ~kBoth) != 0)
      site.nonRedundant = true;
    const SourceLocation loc = anchorLocation(*site.item);
    if (site.item->direction == ir::UpdateDirection::To) {
      if ((elems & kHostStale) != 0)
        report(FindingCode::StaleHostRead, site.var, loc,
               "update to '" + site.item->item +
                   "' copies a host value that is stale here (the device "
                   "holds a newer one)");
      unsigned out = 0;
      if ((elems & (kBoth | kHostOnlyA | kHostOnlyW)) != 0)
        out |= kBoth;
      if ((elems & kHostStale) != 0)
        out |= kCorrupt; // the stale host copy clobbered newer device data
      elems = out;
    } else {
      // Unlike the region-exit from-leg, an update-from flags the
      // never-initialized element too: the planner forces a to-leg onto
      // any map whose update-from can run before the first device write
      // (the loop-carried rule), so kHostOnlyA reaching one is always a
      // dropped or weakened to-leg — the dynamic oracle confirms these
      // corrupt host data (bench_check concordance).
      if ((elems & kDevStale) != 0)
        report(FindingCode::StaleDeviceRead, site.var, loc,
               "update from '" + site.item->item +
                   "' copies a device value the host side never fed or "
                   "refreshed");
      unsigned out = 0;
      if ((elems & (kBoth | kDevOnly | kHostOnlyA)) != 0)
        out |= kBoth;
      if ((elems & kDevStaleWritten) != 0)
        out |= kCorrupt;
      elems = out;
      // The copy-out consumes the device copy — the entry to-leg that fed
      // a loop-carried before-update is not dead.
      deviceReadSeen_.insert(site.var);
    }
  }

  // ---- access transfer functions ---------------------------------------

  bool isKernelLocal(const VarDecl *var) const {
    if (var == nullptr || !var->declStmtRange().isValid())
      return false;
    for (const OmpDirectiveStmt *kernel : cfg_.kernels())
      if (kernel->range().contains(var->declStmtRange()))
        return true;
    return false;
  }

  void processLeafEvents(const Stmt *stmt) {
    auto it = accesses_.byStmt.find(stmt);
    if (it == accesses_.byStmt.end())
      return;
    for (const AccessEvent &event : it->second) {
      if (event.var == nullptr)
        continue;
      if (isAggregateLike(event.var) && !event.isDataAccess())
        continue;
      if (event.onDevice && isKernelLocal(event.var))
        continue;
      // Only mapped variables carry state; firstprivate scalars are passed
      // afresh at each launch and unmapped variables have no plan legs to
      // contradict.
      if (state_.find(event.var) == state_.end())
        continue;
      const bool reads = event.kind == AccessKind::Read ||
                         event.kind == AccessKind::Unknown;
      const bool writes = event.kind == AccessKind::Write ||
                          event.kind == AccessKind::Unknown;
      if (event.onDevice) {
        if (reads)
          handleDeviceRead(event);
        if (writes)
          handleDeviceWrite(event);
      } else {
        if (reads)
          handleHostRead(event);
        if (writes)
          handleHostWrite(event);
      }
    }
  }

  SourceLocation eventLocation(const AccessEvent &event) const {
    return event.stmt != nullptr ? event.stmt->range().begin
                                 : regionLocation();
  }

  void handleDeviceRead(const AccessEvent &event) {
    unsigned &elems = state_[event.var];
    deviceReadSeen_.insert(event.var);
    if ((elems & kDevStale) != 0) {
      report(FindingCode::StaleDeviceRead, event.var, eventLocation(event),
             "kernel reads '" + event.var->name() +
                 "' but the device copy may be stale here");
      // Heal as if the missing transfer existed, so one dropped leg does
      // not cascade into a finding at every later consumption point.
      unsigned out = elems & (kBoth | kDevOnly);
      if ((elems & (kHostOnlyA | kHostOnlyW)) != 0)
        out |= kBoth;
      if ((elems & kCorrupt) != 0)
        out |= kDevOnly;
      elems = out;
    }
  }

  void handleDeviceWrite(const AccessEvent &event) {
    unsigned &elems = state_[event.var];
    bool fullCoverage;
    if (!isAggregateLike(event.var)) {
      fullCoverage = !event.conditional;
    } else {
      const ExtentInfo extent = extents_.effectiveExtent(event.var);
      std::vector<const Stmt *> kernelLoops;
      if (const auto *loops = cfg_.enclosingLoops(event.stmt))
        for (const Stmt *loop : *loops)
          if (event.kernel == nullptr || contains(event.kernel, loop))
            kernelLoops.push_back(loop);
      fullCoverage = isFullCoverageWrite(event, event.var, extent,
                                         kernelLoops);
    }
    if (!fullCoverage) {
      // A partial write behaves like a read-modify-write of the whole
      // object: untouched elements must be current on the device first.
      deviceReadSeen_.insert(event.var);
      if ((elems & kDevStale) != 0)
        report(FindingCode::StaleDeviceRead, event.var, eventLocation(event),
               "kernel partially writes '" + event.var->name() +
                   "' but the untouched device elements may be stale here");
    }
    deviceWriteSeen_.insert(event.var);
    unsigned out = 0;
    if (fullCoverage) {
      out = kDevOnly;
    } else {
      if ((elems & (kBoth | kDevOnly)) != 0)
        out |= kDevOnly;
      if ((elems & kDevStale) != 0)
        out |= kCorrupt;
    }
    elems = out;
  }

  void handleHostRead(const AccessEvent &event) {
    unsigned &elems = state_[event.var];
    if ((elems & kHostStale) != 0) {
      report(FindingCode::StaleHostRead, event.var, eventLocation(event),
             "host reads '" + event.var->name() +
                 "' but the current value lives only on the device here");
      unsigned out = elems & ~kHostStale;
      if ((elems & kDevOnly) != 0)
        out |= kBoth;
      if ((elems & kCorrupt) != 0)
        out |= kHostOnlyW;
      elems = out;
    }
  }

  void handleHostWrite(const AccessEvent &event) {
    unsigned &elems = state_[event.var];
    bool fullCoverage;
    if (!isAggregateLike(event.var)) {
      fullCoverage = !event.conditional;
    } else if (event.fromCall) {
      fullCoverage = event.provenFullCoverage;
    } else {
      const ExtentInfo extent = extents_.effectiveExtent(event.var);
      if (extent.constElems && *extent.constElems == 1) {
        fullCoverage = !event.conditional;
      } else {
        std::vector<const Stmt *> loops;
        if (const auto *enclosing = cfg_.enclosingLoops(event.stmt))
          loops = *enclosing;
        fullCoverage = isFullCoverageWrite(event, event.var, extent, loops);
      }
    }
    if (!fullCoverage && (elems & kHostStale) != 0)
      report(FindingCode::StaleHostRead, event.var, eventLocation(event),
             "host partially writes '" + event.var->name() +
                 "' but the untouched host elements may be stale here");
    unsigned out = 0;
    if (fullCoverage) {
      out = kHostOnlyW;
    } else {
      if ((elems & (kBoth | kHostOnlyA | kHostOnlyW)) != 0)
        out |= kHostOnlyW;
      if ((elems & kHostStale) != 0)
        out |= kCorrupt;
    }
    elems = out;
  }

  // ---- structured walk (mirror of planner.cpp walkStmt) -----------------

  static void mergeStates(AbsState &into, const AbsState &branch) {
    for (const auto &[var, elems] : branch)
      into[var] |= elems;
  }

  void walkStmt(const Stmt *stmt) {
    if (stmt == nullptr)
      return;
    applyUpdates(stmt, ir::UpdatePlacement::Before);
    switch (stmt->kind()) {
    case StmtKind::Compound:
      for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
        walkStmt(sub);
      break;
    case StmtKind::Decl:
    case StmtKind::Expr:
    case StmtKind::Return:
      processLeafEvents(stmt);
      break;
    case StmtKind::If: {
      const auto *ifStmt = static_cast<const IfStmt *>(stmt);
      processLeafEvents(stmt); // condition reads
      AbsState snapshot = state_;
      walkStmt(ifStmt->thenStmt());
      AbsState thenState = std::move(state_);
      state_ = std::move(snapshot);
      if (ifStmt->elseStmt() != nullptr)
        walkStmt(ifStmt->elseStmt());
      mergeStates(state_, thenState);
      break;
    }
    case StmtKind::For:
    case StmtKind::While:
    case StmtKind::Do: {
      const Stmt *body = nullptr;
      if (stmt->kind() == StmtKind::For) {
        const auto *forStmt = static_cast<const ForStmt *>(stmt);
        walkStmt(forStmt->init());
        body = forStmt->body();
      } else if (stmt->kind() == StmtKind::While) {
        body = static_cast<const WhileStmt *>(stmt)->body();
      } else {
        body = static_cast<const DoStmt *>(stmt)->body();
      }
      AbsState entryState = state_;
      // Iterate the body until the state stabilizes, exactly like the
      // planner: the second pass exposes loop-carried dependencies.
      for (int iteration = 0; iteration < 4; ++iteration) {
        AbsState before = state_;
        processLeafEvents(stmt); // cond/inc reads
        applyUpdates(stmt, ir::UpdatePlacement::BodyBegin);
        walkStmt(body);
        applyUpdates(stmt, ir::UpdatePlacement::BodyEnd);
        if (state_ == before && iteration > 0)
          break;
      }
      bool definitelyExecutes = false;
      if (const auto *forStmt = dynamic_cast<const ForStmt *>(stmt)) {
        const LoopBounds bounds = analyzeForLoop(forStmt);
        definitelyExecutes = bounds.valid && bounds.upperConst &&
                             bounds.lowerConst &&
                             *bounds.upperConst > *bounds.lowerConst;
      }
      if (stmt->kind() != StmtKind::Do && !definitelyExecutes)
        mergeStates(state_, entryState);
      break;
    }
    case StmtKind::Switch: {
      const auto *switchStmt = static_cast<const SwitchStmt *>(stmt);
      processLeafEvents(stmt);
      AbsState snapshot = state_;
      walkStmt(switchStmt->body());
      mergeStates(state_, snapshot);
      break;
    }
    case StmtKind::Case:
      walkStmt(static_cast<const CaseStmt *>(stmt)->sub());
      break;
    case StmtKind::Default:
      walkStmt(static_cast<const DefaultStmt *>(stmt)->sub());
      break;
    case StmtKind::OmpDirective: {
      const auto *directive = static_cast<const OmpDirectiveStmt *>(stmt);
      processLeafEvents(stmt); // clause values / reductions
      if (directive->associated() != nullptr)
        walkStmt(directive->associated());
      break;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Null:
      break;
    }
    applyUpdates(stmt, ir::UpdatePlacement::After);
  }

  /// Region-locating descent (mirror of the planner's RegionWalker): the
  /// region statements are consecutive children of one compound.
  void visit(const Stmt *stmt) {
    if (done_ || stmt == nullptr)
      return;
    if (stmt->kind() == StmtKind::Compound) {
      for (const Stmt *sub :
           static_cast<const CompoundStmt *>(stmt)->body()) {
        if (done_)
          return;
        if (sub == startStmt_) {
          active_ = true;
          applyRegionEntry();
        }
        if (active_)
          walkStmt(sub);
        if (sub == endStmt_ && active_) {
          applyRegionExit();
          done_ = true;
          return;
        }
        if (!active_)
          visit(sub); // descend looking for the region
      }
      return;
    }
    switch (stmt->kind()) {
    case StmtKind::If: {
      const auto *ifStmt = static_cast<const IfStmt *>(stmt);
      visit(ifStmt->thenStmt());
      visit(ifStmt->elseStmt());
      return;
    }
    case StmtKind::For:
      visit(static_cast<const ForStmt *>(stmt)->body());
      return;
    case StmtKind::While:
      visit(static_cast<const WhileStmt *>(stmt)->body());
      return;
    case StmtKind::Do:
      visit(static_cast<const DoStmt *>(stmt)->body());
      return;
    case StmtKind::Switch:
      visit(static_cast<const SwitchStmt *>(stmt)->body());
      return;
    case StmtKind::OmpDirective:
      visit(static_cast<const OmpDirectiveStmt *>(stmt)->associated());
      return;
    default:
      return;
    }
  }

  // ---- members ----------------------------------------------------------

  const TranslationUnit &unit_;
  const AstCfg &cfg_;
  const FunctionAccessInfo &accesses_;
  const InterproceduralResult &interproc_;
  const ir::MappingIr &ir_;
  const ir::Region &region_;
  ExtentResolver &extents_;
  CheckResult &result_;
  const FunctionDecl *fn_;
  LivenessAnalysis liveness_;

  std::map<std::pair<std::size_t, std::size_t>, const Stmt *> stmtsByRange_;
  std::map<std::pair<std::string, std::size_t>, VarDecl *>
      varsByNameAndOffset_;
  std::vector<std::pair<const ir::MapItem *, VarDecl *>> mapVars_;
  std::set<VarDecl *> firstprivate_;
  std::vector<UpdateSite> updateSites_;
  std::map<std::pair<const Stmt *, int>, std::vector<std::size_t>>
      updatesByAnchor_;

  const Stmt *startStmt_ = nullptr;
  const Stmt *endStmt_ = nullptr;
  std::size_t regionEndOffset_ = 0;

  AbsState state_;
  std::set<VarDecl *> warm_;
  std::set<VarDecl *> deviceReadSeen_;
  std::set<VarDecl *> deviceWriteSeen_;
  bool active_ = false;
  bool done_ = false;
  bool entered_ = false;
  bool exited_ = false;
  std::set<std::tuple<int, std::string, std::size_t>> reported_;
};

} // namespace

CheckResult checkPlan(const TranslationUnit &unit,
                      const std::vector<std::unique_ptr<AstCfg>> &cfgs,
                      const InterproceduralResult &interproc,
                      const ir::MappingIr &ir,
                      const summary::TuImports *imports) {
  CheckResult result;
  MallocExtents mallocExtents(unit);
  // Diagnostics stay off: the plan stage already reported any call-site
  // disagreements; the checker resolves extents silently.
  ExtentResolver extents(unit, interproc, mallocExtents, imports,
                         /*diags=*/nullptr);
  for (const ir::Region &region : ir.regions) {
    const FunctionDecl *fn = unit.findFunction(region.function);
    if (fn == nullptr || fn->body() == nullptr)
      continue;
    const AstCfg *cfg = nullptr;
    for (const auto &candidate : cfgs)
      if (candidate->function() == fn)
        cfg = candidate.get();
    const FunctionAccessInfo *accesses = interproc.accessesFor(fn);
    if (cfg == nullptr || accesses == nullptr)
      continue;
    RegionChecker checker(unit, *cfg, *accesses, interproc, ir, region,
                          extents, result);
    if (checker.run())
      ++result.regionsChecked;
  }
  return result;
}

} // namespace ompdart::check
