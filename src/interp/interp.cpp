#include "interp/interp.hpp"

#include "frontend/parser.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace ompdart::interp {

namespace {

/// Control-flow signals.
struct ReturnSignal {
  Value value;
};
struct BreakSignal {};
struct ContinueSignal {};
struct ExitSignal {
  std::int64_t code;
};
struct RuntimeError {
  std::string message;
};

/// Collects DeclRef variables in an expression/statement tree, excluding
/// variables declared within it (kernel-local temporaries).
class RefCollector {
public:
  std::vector<VarDecl *> ordered;
  std::set<VarDecl *> seen;
  std::set<VarDecl *> declared;

  void addVar(VarDecl *var) {
    if (var == nullptr || declared.count(var))
      return;
    if (seen.insert(var).second)
      ordered.push_back(var);
  }

  void visitExpr(const Expr *expr) {
    if (expr == nullptr)
      return;
    switch (expr->kind()) {
    case ExprKind::DeclRef:
      addVar(static_cast<const DeclRefExpr *>(expr)->decl());
      return;
    case ExprKind::ArraySubscript: {
      const auto *subscript = static_cast<const ArraySubscriptExpr *>(expr);
      visitExpr(subscript->base());
      visitExpr(subscript->index());
      return;
    }
    case ExprKind::Member:
      visitExpr(static_cast<const MemberExpr *>(expr)->base());
      return;
    case ExprKind::Call:
      for (const Expr *arg : static_cast<const CallExpr *>(expr)->args())
        visitExpr(arg);
      return;
    case ExprKind::Unary:
      visitExpr(static_cast<const UnaryExpr *>(expr)->operand());
      return;
    case ExprKind::Binary: {
      const auto *binary = static_cast<const BinaryExpr *>(expr);
      visitExpr(binary->lhs());
      visitExpr(binary->rhs());
      return;
    }
    case ExprKind::Conditional: {
      const auto *conditional = static_cast<const ConditionalExpr *>(expr);
      visitExpr(conditional->cond());
      visitExpr(conditional->trueExpr());
      visitExpr(conditional->falseExpr());
      return;
    }
    case ExprKind::Cast:
      visitExpr(static_cast<const CastExpr *>(expr)->operand());
      return;
    case ExprKind::Paren:
      visitExpr(static_cast<const ParenExpr *>(expr)->inner());
      return;
    case ExprKind::InitList:
      for (const Expr *init : static_cast<const InitListExpr *>(expr)->inits())
        visitExpr(init);
      return;
    default:
      return;
    }
  }

  void visitStmt(const Stmt *stmt) {
    if (stmt == nullptr)
      return;
    switch (stmt->kind()) {
    case StmtKind::Compound:
      for (const Stmt *sub : static_cast<const CompoundStmt *>(stmt)->body())
        visitStmt(sub);
      return;
    case StmtKind::Decl:
      for (VarDecl *var : static_cast<const DeclStmt *>(stmt)->decls()) {
        declared.insert(var);
        if (var->init() != nullptr)
          visitExpr(var->init());
      }
      return;
    case StmtKind::Expr:
      visitExpr(static_cast<const ExprStmt *>(stmt)->expr());
      return;
    case StmtKind::If: {
      const auto *ifStmt = static_cast<const IfStmt *>(stmt);
      visitExpr(ifStmt->cond());
      visitStmt(ifStmt->thenStmt());
      visitStmt(ifStmt->elseStmt());
      return;
    }
    case StmtKind::For: {
      const auto *forStmt = static_cast<const ForStmt *>(stmt);
      visitStmt(forStmt->init());
      visitExpr(forStmt->cond());
      visitExpr(forStmt->inc());
      visitStmt(forStmt->body());
      return;
    }
    case StmtKind::While: {
      const auto *whileStmt = static_cast<const WhileStmt *>(stmt);
      visitExpr(whileStmt->cond());
      visitStmt(whileStmt->body());
      return;
    }
    case StmtKind::Do: {
      const auto *doStmt = static_cast<const DoStmt *>(stmt);
      visitStmt(doStmt->body());
      visitExpr(doStmt->cond());
      return;
    }
    case StmtKind::Switch: {
      const auto *switchStmt = static_cast<const SwitchStmt *>(stmt);
      visitExpr(switchStmt->cond());
      visitStmt(switchStmt->body());
      return;
    }
    case StmtKind::Case: {
      const auto *caseStmt = static_cast<const CaseStmt *>(stmt);
      visitExpr(caseStmt->value());
      visitStmt(caseStmt->sub());
      return;
    }
    case StmtKind::Default:
      visitStmt(static_cast<const DefaultStmt *>(stmt)->sub());
      return;
    case StmtKind::Return:
      visitExpr(static_cast<const ReturnStmt *>(stmt)->value());
      return;
    case StmtKind::OmpDirective: {
      const auto *directive = static_cast<const OmpDirectiveStmt *>(stmt);
      for (const OmpClause &clause : directive->clauses()) {
        visitExpr(clause.value);
        for (const OmpObject &object : clause.objects)
          addVar(object.var);
      }
      visitStmt(directive->associated());
      return;
    }
    default:
      return;
    }
  }
};

/// Aggregate-like variables (arrays, pointers, structs) follow the implicit
/// map(tofrom:) rule; scalars default to firstprivate.
bool aggregateLike(const VarDecl *var) {
  if (var == nullptr)
    return false;
  const Type *type = var->type();
  return type->isArray() || type->isPointer() || type->isRecord();
}

sim::MapKind toSimMapKind(OmpMapType type) {
  switch (type) {
  case OmpMapType::To:
    return sim::MapKind::To;
  case OmpMapType::From:
    return sim::MapKind::From;
  case OmpMapType::ToFrom:
    return sim::MapKind::ToFrom;
  case OmpMapType::Alloc:
    return sim::MapKind::Alloc;
  case OmpMapType::Release:
    return sim::MapKind::Release;
  case OmpMapType::Delete:
    return sim::MapKind::Delete;
  }
  return sim::MapKind::ToFrom;
}

} // namespace

Interpreter::Interpreter(const TranslationUnit &unit, InterpOptions options,
                         const PlanOverlay *overlay)
    : unit_(unit), options_(options),
      overlay_(overlay != nullptr && !overlay->empty() ? overlay : nullptr) {
  dev_ = std::make_unique<sim::DeviceDataEnvironment>(ledger_);
  if (overlay_ != nullptr) {
    for (const PlanOverlay::Region &region : overlay_->regions) {
      if (region.startStmt != nullptr)
        overlayRegionStarts_[region.startStmt].push_back(&region);
      if (region.endStmt != nullptr)
        overlayRegionEnds_[region.endStmt].push_back(&region);
    }
    for (const PlanOverlay::Update &update : overlay_->updates) {
      switch (update.placement) {
      case ir::UpdatePlacement::Before:
        overlayUpdatesBefore_[update.anchor].push_back(&update);
        break;
      case ir::UpdatePlacement::After:
        overlayUpdatesAfter_[update.anchor].push_back(&update);
        break;
      case ir::UpdatePlacement::BodyBegin:
        overlayUpdatesBodyBegin_[update.anchor].push_back(&update);
        break;
      case ir::UpdatePlacement::BodyEnd:
        overlayUpdatesBodyEnd_[update.anchor].push_back(&update);
        break;
      }
    }
  }
}

void Interpreter::countOp() {
  ++opCount_;
  if (opCount_ > options_.maxOps)
    fail("operation budget exceeded (possible runaway loop)");
  if (deviceMode_)
    ledger_.addDeviceOps(1);
  else
    ledger_.addHostOps(1);
}

void Interpreter::fail(const std::string &message) {
  throw RuntimeError{message};
}

std::uint64_t Interpreter::slotsOf(const Type *type) const {
  if (type == nullptr)
    return 1;
  switch (type->kind()) {
  case TypeKind::Builtin:
  case TypeKind::Pointer:
    return 1;
  case TypeKind::Array: {
    const auto *array = static_cast<const ArrayType *>(type);
    return array->extent().value_or(0) * slotsOf(array->element());
  }
  case TypeKind::Record:
    return static_cast<const RecordType *>(type)->decl()->fields().size();
  }
  return 1;
}

int Interpreter::createObject(std::string name, const Type *elemType,
                              std::uint64_t slots) {
  auto obj = std::make_unique<MemoryObject>();
  obj->id = static_cast<int>(objects_.size());
  obj->name = std::move(name);
  obj->elemType = elemType;
  obj->elemBytes = elemType != nullptr ? elemType->sizeInBytes() : 8;
  if (obj->elemBytes == 0)
    obj->elemBytes = 1;
  obj->byteSize = slots * obj->elemBytes;
  if (elemType != nullptr && elemType->kind() == TypeKind::Record &&
      slots > 1) {
    // Record objects store one slot per field, so sizing each slot at the
    // whole record would overcount mapped bytes fields-times. Charge the
    // true aggregate size (records per object x record size). The derived
    // per-slot width is exact only for uniform field sizes — the one-slot-
    // per-field value model has no per-slot widths to begin with — so
    // mixed-width records keep a truncated approximation in elemBytes
    // while byteSize (what map/update transfers ledger) stays exact.
    const auto *record = static_cast<const RecordType *>(elemType);
    const std::size_t fields = record->decl()->fields().size();
    if (fields > 0 && slots % fields == 0) {
      obj->byteSize = (slots / fields) * elemType->sizeInBytes();
      obj->elemBytes = std::max<std::uint64_t>(1, obj->byteSize / slots);
    }
  }
  obj->host.assign(slots, Value{std::int64_t{0}});
  const int id = obj->id;
  objects_.push_back(std::move(obj));
  return id;
}

int Interpreter::createUntypedObject(std::string name, std::uint64_t bytes) {
  auto obj = std::make_unique<MemoryObject>();
  obj->id = static_cast<int>(objects_.size());
  obj->name = std::move(name);
  obj->untyped = true;
  obj->byteSize = bytes;
  obj->elemBytes = 1;
  const int id = obj->id;
  objects_.push_back(std::move(obj));
  return id;
}

void Interpreter::retypeObject(MemoryObject &obj, const Type *elemType) {
  if (!obj.untyped || elemType == nullptr || elemType->sizeInBytes() == 0)
    return;
  obj.untyped = false;
  obj.elemType = elemType;
  obj.elemBytes = elemType->sizeInBytes();
  obj.host.assign(obj.byteSize / obj.elemBytes, Value{std::int64_t{0}});
}

std::vector<Value> &Interpreter::activeBuffer(MemoryObject &obj) {
  if (deviceMode_ && obj.deviceAllocated && dev_->isPresent(obj.id))
    return obj.device;
  return obj.host;
}

Value *Interpreter::lookupBinding(VarDecl *var) {
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    auto found = it->bindings.find(var);
    if (found != it->bindings.end())
      return &found->second;
  }
  auto found = globals_.bindings.find(var);
  return found != globals_.bindings.end() ? &found->second : nullptr;
}

void Interpreter::bind(VarDecl *var, Value value) {
  if (frames_.empty())
    globals_.bindings[var] = value;
  else
    frames_.back().bindings[var] = value;
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

double Interpreter::asDouble(const Value &value) {
  if (std::holds_alternative<double>(value))
    return std::get<double>(value);
  if (std::holds_alternative<std::int64_t>(value))
    return static_cast<double>(std::get<std::int64_t>(value));
  return 0.0;
}

std::int64_t Interpreter::asInt(const Value &value) {
  if (std::holds_alternative<std::int64_t>(value))
    return std::get<std::int64_t>(value);
  if (std::holds_alternative<double>(value))
    return static_cast<std::int64_t>(std::get<double>(value));
  return std::get<PtrValue>(value).isNull() ? 0 : 1;
}

bool Interpreter::truthy(const Value &value) {
  if (std::holds_alternative<PtrValue>(value))
    return !std::get<PtrValue>(value).isNull();
  if (std::holds_alternative<double>(value))
    return std::get<double>(value) != 0.0;
  return std::get<std::int64_t>(value) != 0;
}

Value Interpreter::convert(const Value &value, const Type *type) {
  if (type == nullptr)
    return value;
  if (type->isPointer()) {
    if (std::holds_alternative<PtrValue>(value)) {
      PtrValue ptr = std::get<PtrValue>(value);
      const auto *pointer = static_cast<const PointerType *>(type);
      if (ptr.objectId >= 0) {
        MemoryObject &obj = object(ptr.objectId);
        retypeObject(obj, scalarBaseType(pointer->pointee()));
      }
      ptr.elemType = pointer->pointee();
      return ptr;
    }
    return PtrValue{}; // null pointer from integer 0
  }
  if (type->isFloatingPoint())
    return asDouble(value);
  if (type->isInteger() || type->isScalar()) {
    if (std::holds_alternative<double>(value)) {
      double d = std::get<double>(value);
      // Narrowing conversions for sub-64-bit integer types.
      return static_cast<std::int64_t>(d);
    }
    return asInt(value);
  }
  return value;
}

// ---------------------------------------------------------------------------
// Program setup
// ---------------------------------------------------------------------------

RunResult Interpreter::run() {
  RunResult result;
  try {
    // Globals: create backing objects and evaluate initializers in order.
    for (VarDecl *var : unit_.globals) {
      const Type *type = var->type();
      const Type *elem = scalarBaseType(type);
      const std::uint64_t slots = std::max<std::uint64_t>(1, slotsOf(type));
      const int id = createObject(var->name(), elem, slots);
      bind(var, Value{PtrValue{id, 0, elem}});
      if (var->init() != nullptr) {
        if (var->init()->kind() == ExprKind::InitList) {
          const auto *init = static_cast<const InitListExpr *>(var->init());
          MemoryObject &obj = object(id);
          for (std::size_t i = 0;
               i < init->inits().size() && i < obj.host.size(); ++i)
            obj.host[i] = convert(evalExpr(init->inits()[i]), elem);
        } else if (type->isScalar() || type->isPointer()) {
          object(id).host[0] = convert(evalExpr(var->init()), type);
        }
      }
    }
    FunctionDecl *mainFn = unit_.findFunction("main");
    if (mainFn == nullptr || !mainFn->isDefined())
      fail("no main() function");
    const Value exitValue = callFunction(mainFn, {});
    result.exitCode = asInt(exitValue);
    result.ok = true;
  } catch (const ExitSignal &signal) {
    result.exitCode = signal.code;
    result.ok = true;
  } catch (const RuntimeError &error) {
    result.error = error.message;
  } catch (const ReturnSignal &) {
    result.error = "return outside function";
  }
  result.output = output_;
  result.ledger = ledger_;
  return result;
}

Value Interpreter::callFunction(FunctionDecl *fn, std::vector<Value> args) {
  if (fn->body() == nullptr)
    fail("call to undefined function '" + fn->name() + "'");
  Frame frame;
  frames_.push_back(std::move(frame));
  for (std::size_t i = 0; i < fn->params().size(); ++i) {
    VarDecl *param = fn->params()[i];
    Value value = i < args.size() ? args[i] : Value{std::int64_t{0}};
    // Uniform memory model: every variable (including pointer parameters)
    // is backed by a 1-slot object holding its current value, so address-of
    // and slot loads behave identically everywhere.
    const int id = createObject(param->name(), param->type(), 1);
    object(id).host[0] = convert(value, param->type());
    frames_.back().bindings[param] = Value{PtrValue{id, 0, param->type()}};
  }
  Value returned{std::int64_t{0}};
  try {
    execStmt(fn->body());
  } catch (ReturnSignal &signal) {
    returned = signal.value;
  }
  frames_.pop_back();
  return returned;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

void Interpreter::execStmt(const Stmt *stmt) {
  if (stmt == nullptr)
    return;
  if (overlay_ == nullptr) {
    execStmtImpl(stmt);
    return;
  }
  // Overlay hooks fire around the anchor statement exactly where the
  // rewriter would have inserted text: region entry + before-updates ahead
  // of it, after-updates + region exit behind it. Control-flow signals
  // (break/continue/return) thrown by the statement skip the trailing
  // hooks, just as they would skip inserted directives in rewritten source.
  // The anchor maps make each hook an O(1) lookup on this hot path.
  if (auto it = overlayRegionStarts_.find(stmt);
      it != overlayRegionStarts_.end())
    for (const PlanOverlay::Region *region : it->second)
      enterOverlayRegion(*region);
  if (auto it = overlayUpdatesBefore_.find(stmt);
      it != overlayUpdatesBefore_.end())
    for (const PlanOverlay::Update *update : it->second)
      applyOverlayUpdate(*update);
  execStmtImpl(stmt);
  if (auto it = overlayUpdatesAfter_.find(stmt);
      it != overlayUpdatesAfter_.end())
    for (const PlanOverlay::Update *update : it->second)
      applyOverlayUpdate(*update);
  if (auto it = overlayRegionEnds_.find(stmt);
      it != overlayRegionEnds_.end())
    for (const PlanOverlay::Region *region : it->second)
      exitOverlayRegion(*region);
}

void Interpreter::execStmtImpl(const Stmt *stmt) {
  switch (stmt->kind()) {
  case StmtKind::Compound:
    execCompound(static_cast<const CompoundStmt *>(stmt));
    return;
  case StmtKind::Decl:
    execDecl(static_cast<const DeclStmt *>(stmt));
    return;
  case StmtKind::Expr:
    evalExpr(static_cast<const ExprStmt *>(stmt)->expr());
    return;
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(stmt);
    if (truthy(evalExpr(ifStmt->cond())))
      execStmt(ifStmt->thenStmt());
    else
      execStmt(ifStmt->elseStmt());
    return;
  }
  case StmtKind::For: {
    const auto *forStmt = static_cast<const ForStmt *>(stmt);
    execStmt(forStmt->init());
    while (forStmt->cond() == nullptr ||
           truthy(evalExpr(forStmt->cond()))) {
      try {
        overlayLoopBody(stmt, ir::UpdatePlacement::BodyBegin);
        execStmt(forStmt->body());
        overlayLoopBody(stmt, ir::UpdatePlacement::BodyEnd);
      } catch (BreakSignal &) {
        break;
      } catch (ContinueSignal &) {
      }
      if (forStmt->inc() != nullptr)
        evalExpr(forStmt->inc());
    }
    return;
  }
  case StmtKind::While: {
    const auto *whileStmt = static_cast<const WhileStmt *>(stmt);
    while (truthy(evalExpr(whileStmt->cond()))) {
      try {
        overlayLoopBody(stmt, ir::UpdatePlacement::BodyBegin);
        execStmt(whileStmt->body());
        overlayLoopBody(stmt, ir::UpdatePlacement::BodyEnd);
      } catch (BreakSignal &) {
        break;
      } catch (ContinueSignal &) {
      }
    }
    return;
  }
  case StmtKind::Do: {
    const auto *doStmt = static_cast<const DoStmt *>(stmt);
    do {
      try {
        overlayLoopBody(stmt, ir::UpdatePlacement::BodyBegin);
        execStmt(doStmt->body());
        overlayLoopBody(stmt, ir::UpdatePlacement::BodyEnd);
      } catch (BreakSignal &) {
        break;
      } catch (ContinueSignal &) {
      }
    } while (truthy(evalExpr(doStmt->cond())));
    return;
  }
  case StmtKind::Switch: {
    const auto *switchStmt = static_cast<const SwitchStmt *>(stmt);
    const std::int64_t selector = asInt(evalExpr(switchStmt->cond()));
    const auto *body =
        dynamic_cast<const CompoundStmt *>(switchStmt->body());
    if (body == nullptr)
      return;
    // Find the matching case (or default), then execute with fallthrough.
    // Consecutive labels parse as nested wrappers (`case 0: case 1: stmt`),
    // so the scan unwraps the whole label chain of each child.
    auto labelsMatch = [&](const Stmt *sub, bool &hasDefault) {
      while (sub != nullptr) {
        if (sub->kind() == StmtKind::Case) {
          const auto *caseStmt = static_cast<const CaseStmt *>(sub);
          if (asInt(evalExpr(caseStmt->value())) == selector)
            return true;
          sub = caseStmt->sub();
        } else if (sub->kind() == StmtKind::Default) {
          hasDefault = true;
          sub = static_cast<const DefaultStmt *>(sub)->sub();
        } else {
          break;
        }
      }
      return false;
    };
    std::size_t start = body->body().size();
    std::size_t defaultIndex = body->body().size();
    for (std::size_t i = 0; i < body->body().size(); ++i) {
      bool hasDefault = false;
      if (labelsMatch(body->body()[i], hasDefault)) {
        start = i;
        break;
      }
      if (hasDefault && defaultIndex == body->body().size())
        defaultIndex = i;
    }
    if (start == body->body().size())
      start = defaultIndex;
    try {
      for (std::size_t i = start; i < body->body().size(); ++i) {
        const Stmt *sub = body->body()[i];
        if (sub->kind() == StmtKind::Case)
          execStmt(static_cast<const CaseStmt *>(sub)->sub());
        else if (sub->kind() == StmtKind::Default)
          execStmt(static_cast<const DefaultStmt *>(sub)->sub());
        else
          execStmt(sub);
      }
    } catch (BreakSignal &) {
    }
    return;
  }
  case StmtKind::Break:
    throw BreakSignal{};
  case StmtKind::Continue:
    throw ContinueSignal{};
  case StmtKind::Return: {
    const auto *returnStmt = static_cast<const ReturnStmt *>(stmt);
    Value value{std::int64_t{0}};
    if (returnStmt->value() != nullptr)
      value = evalExpr(returnStmt->value());
    throw ReturnSignal{value};
  }
  case StmtKind::Null:
    return;
  case StmtKind::OmpDirective:
    execOmp(static_cast<const OmpDirectiveStmt *>(stmt));
    return;
  case StmtKind::Case:
    execStmt(static_cast<const CaseStmt *>(stmt)->sub());
    return;
  case StmtKind::Default:
    execStmt(static_cast<const DefaultStmt *>(stmt)->sub());
    return;
  }
}

void Interpreter::execCompound(const CompoundStmt *stmt) {
  for (const Stmt *sub : stmt->body())
    execStmt(sub);
}

void Interpreter::execDecl(const DeclStmt *stmt) {
  for (VarDecl *var : stmt->decls()) {
    const Type *type = var->type();
    const Type *elem = scalarBaseType(type);
    const std::uint64_t slots = std::max<std::uint64_t>(1, slotsOf(type));
    const int id = createObject(var->name(), elem, slots);
    bind(var, Value{PtrValue{id, 0, elem}});
    if (var->init() == nullptr)
      continue;
    if (var->init()->kind() == ExprKind::InitList) {
      const auto *init = static_cast<const InitListExpr *>(var->init());
      MemoryObject &obj = object(id);
      auto &buffer = activeBuffer(obj);
      for (std::size_t i = 0; i < init->inits().size() && i < buffer.size();
           ++i)
        buffer[i] = convert(evalExpr(init->inits()[i]), elem);
    } else if (type->isPointer()) {
      // Pointer variables store their pointer value in slot 0.
      Value value = convert(evalExpr(var->init()), type);
      activeBuffer(object(id))[0] = value;
    } else if (type->isScalar()) {
      activeBuffer(object(id))[0] = convert(evalExpr(var->init()), type);
    }
  }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value Interpreter::evalExpr(const Expr *expr) {
  countOp();
  if (expr == nullptr)
    return Value{std::int64_t{0}};
  switch (expr->kind()) {
  case ExprKind::IntLiteral:
    return Value{static_cast<const IntLiteralExpr *>(expr)->value()};
  case ExprKind::FloatLiteral:
    return Value{static_cast<const FloatLiteralExpr *>(expr)->value()};
  case ExprKind::CharLiteral:
    return Value{static_cast<std::int64_t>(
        static_cast<const CharLiteralExpr *>(expr)->value())};
  case ExprKind::StringLiteral: {
    const auto *literal = static_cast<const StringLiteralExpr *>(expr);
    auto it = stringObjects_.find(literal);
    int id = 0;
    if (it != stringObjects_.end()) {
      id = it->second;
    } else {
      id = createObject("<string>", nullptr, literal->value().size() + 1);
      MemoryObject &obj = object(id);
      obj.elemBytes = 1;
      obj.byteSize = literal->value().size() + 1;
      for (std::size_t i = 0; i < literal->value().size(); ++i)
        obj.host[i] = Value{static_cast<std::int64_t>(literal->value()[i])};
      stringObjects_[literal] = id;
    }
    return Value{PtrValue{id, 0, nullptr}};
  }
  case ExprKind::DeclRef: {
    VarDecl *var = static_cast<const DeclRefExpr *>(expr)->decl();
    Value *binding = lookupBinding(var);
    if (binding == nullptr)
      fail("unbound variable '" + (var ? var->name() : "?") + "'");
    const PtrValue base = std::get<PtrValue>(*binding);
    const Type *type = var->type();
    if (type->isArray() || type->isRecord()) {
      // Arrays decay; structs are referenced by address.
      PtrValue ptr = base;
      if (const auto *array = dynamic_cast<const ArrayType *>(type))
        ptr.elemType = array->element();
      else
        ptr.elemType = type;
      return Value{ptr};
    }
    // Scalar or pointer variable: load its slot.
    MemoryObject &obj = object(base.objectId);
    Value value = activeBuffer(obj)[static_cast<std::size_t>(base.offset)];
    return value;
  }
  case ExprKind::ArraySubscript:
  case ExprKind::Member: {
    const LValue lv = evalLValue(expr);
    // Intermediate dimensions of multi-dimensional arrays decay to pointers
    // rather than loading a slot (`g[i]` of `double g[3][4]`).
    if (expr->type() != nullptr && expr->type()->isArray()) {
      PtrValue ptr;
      ptr.objectId = lv.objectId;
      ptr.offset = lv.slot;
      ptr.elemType =
          static_cast<const ArrayType *>(expr->type())->element();
      return Value{ptr};
    }
    return load(lv);
  }
  case ExprKind::Call:
    return evalCall(static_cast<const CallExpr *>(expr));
  case ExprKind::Unary:
    return evalUnary(static_cast<const UnaryExpr *>(expr));
  case ExprKind::Binary:
    return evalBinary(static_cast<const BinaryExpr *>(expr));
  case ExprKind::Conditional: {
    const auto *conditional = static_cast<const ConditionalExpr *>(expr);
    return truthy(evalExpr(conditional->cond()))
               ? evalExpr(conditional->trueExpr())
               : evalExpr(conditional->falseExpr());
  }
  case ExprKind::Cast: {
    const auto *cast = static_cast<const CastExpr *>(expr);
    if (cast->type()->isVoid()) {
      evalExpr(cast->operand());
      return Value{std::int64_t{0}};
    }
    return convert(evalExpr(cast->operand()), cast->type());
  }
  case ExprKind::Paren:
    return evalExpr(static_cast<const ParenExpr *>(expr)->inner());
  case ExprKind::InitList:
    fail("initializer list in expression context");
  case ExprKind::Sizeof:
    return Value{static_cast<std::int64_t>(
        static_cast<const SizeofExpr *>(expr)->argument()->sizeInBytes())};
  }
  return Value{std::int64_t{0}};
}

Interpreter::LValue Interpreter::evalLValue(const Expr *expr) {
  expr = ignoreParensAndCasts(expr);
  if (expr == nullptr)
    fail("null lvalue");
  switch (expr->kind()) {
  case ExprKind::DeclRef: {
    VarDecl *var = static_cast<const DeclRefExpr *>(expr)->decl();
    Value *binding = lookupBinding(var);
    if (binding == nullptr)
      fail("unbound variable '" + (var ? var->name() : "?") + "'");
    const PtrValue base = std::get<PtrValue>(*binding);
    return LValue{base.objectId, base.offset};
  }
  case ExprKind::ArraySubscript: {
    const auto *subscript = static_cast<const ArraySubscriptExpr *>(expr);
    const PtrValue base = evalPointerLike(subscript->base());
    const std::int64_t index = asInt(evalExpr(subscript->index()));
    const std::uint64_t stride = slotsOf(base.elemType);
    return LValue{base.objectId,
                  base.offset + index * static_cast<std::int64_t>(stride)};
  }
  case ExprKind::Member: {
    const auto *member = static_cast<const MemberExpr *>(expr);
    PtrValue base;
    if (member->isArrow()) {
      base = std::get<PtrValue>(evalExpr(member->base()));
    } else {
      base = evalPointerLike(member->base());
    }
    // Field ordinal = slot offset within the record object.
    const RecordDecl *record = nullptr;
    const Type *baseType = member->base()->type();
    if (member->isArrow()) {
      if (const auto *pointer = dynamic_cast<const PointerType *>(baseType))
        baseType = pointer->pointee();
    }
    if (const auto *recordType = dynamic_cast<const RecordType *>(baseType))
      record = recordType->decl();
    if (record == nullptr)
      fail("member access on non-struct");
    std::int64_t ordinal = 0;
    for (const FieldDecl &field : record->fields()) {
      if (field.name == member->member())
        break;
      ++ordinal;
    }
    return LValue{base.objectId, base.offset + ordinal};
  }
  case ExprKind::Unary: {
    const auto *unary = static_cast<const UnaryExpr *>(expr);
    if (unary->op() == UnaryOp::Deref) {
      const PtrValue ptr = std::get<PtrValue>(evalExpr(unary->operand()));
      if (ptr.isNull())
        fail("null pointer dereference");
      return LValue{ptr.objectId, ptr.offset};
    }
    break;
  }
  default:
    break;
  }
  fail("expression is not an lvalue");
}

Value Interpreter::load(const LValue &lv) {
  if (lv.objectId < 0)
    fail("load from null");
  MemoryObject &obj = object(lv.objectId);
  if (obj.freed)
    fail("use after free of '" + obj.name + "'");
  auto &buffer = activeBuffer(obj);
  if (lv.slot < 0 || static_cast<std::size_t>(lv.slot) >= buffer.size())
    fail("out-of-bounds access in '" + obj.name + "' (slot " +
         std::to_string(lv.slot) + " of " + std::to_string(buffer.size()) +
         ")");
  return buffer[static_cast<std::size_t>(lv.slot)];
}

void Interpreter::store(const LValue &lv, Value value,
                        const Type *targetType) {
  if (lv.objectId < 0)
    fail("store to null");
  MemoryObject &obj = object(lv.objectId);
  if (obj.freed)
    fail("use after free of '" + obj.name + "'");
  auto &buffer = activeBuffer(obj);
  if (lv.slot < 0 || static_cast<std::size_t>(lv.slot) >= buffer.size())
    fail("out-of-bounds store in '" + obj.name + "' (slot " +
         std::to_string(lv.slot) + " of " + std::to_string(buffer.size()) +
         ")");
  buffer[static_cast<std::size_t>(lv.slot)] = convert(value, targetType);
}

PtrValue Interpreter::evalPointerLike(const Expr *expr) {
  const Value value = evalExpr(expr);
  if (std::holds_alternative<PtrValue>(value)) {
    PtrValue ptr = std::get<PtrValue>(value);
    if (ptr.elemType == nullptr) {
      // Derive from the static type.
      const Type *type = expr->type();
      if (const auto *pointer = dynamic_cast<const PointerType *>(type))
        ptr.elemType = pointer->pointee();
      else if (const auto *array = dynamic_cast<const ArrayType *>(type))
        ptr.elemType = array->element();
    }
    return ptr;
  }
  fail("expected a pointer value");
}

Value Interpreter::evalUnary(const UnaryExpr *expr) {
  switch (expr->op()) {
  case UnaryOp::Plus:
    return evalExpr(expr->operand());
  case UnaryOp::Minus: {
    const Value value = evalExpr(expr->operand());
    if (std::holds_alternative<double>(value))
      return Value{-std::get<double>(value)};
    return Value{-asInt(value)};
  }
  case UnaryOp::Not:
    return Value{~asInt(evalExpr(expr->operand()))};
  case UnaryOp::LNot:
    return Value{static_cast<std::int64_t>(
        truthy(evalExpr(expr->operand())) ? 0 : 1)};
  case UnaryOp::Deref: {
    const PtrValue ptr = std::get<PtrValue>(evalExpr(expr->operand()));
    if (ptr.isNull())
      fail("null pointer dereference");
    return load(LValue{ptr.objectId, ptr.offset});
  }
  case UnaryOp::AddrOf: {
    const LValue lv = evalLValue(expr->operand());
    PtrValue ptr;
    ptr.objectId = lv.objectId;
    ptr.offset = lv.slot;
    ptr.elemType = expr->operand()->type();
    return Value{ptr};
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    const LValue lv = evalLValue(expr->operand());
    const Value old = load(lv);
    const bool inc =
        expr->op() == UnaryOp::PreInc || expr->op() == UnaryOp::PostInc;
    Value updated;
    if (std::holds_alternative<PtrValue>(old)) {
      PtrValue ptr = std::get<PtrValue>(old);
      const std::int64_t stride =
          static_cast<std::int64_t>(slotsOf(ptr.elemType));
      ptr.offset += inc ? stride : -stride;
      updated = ptr;
    } else if (std::holds_alternative<double>(old)) {
      updated = std::get<double>(old) + (inc ? 1.0 : -1.0);
    } else {
      updated = asInt(old) + (inc ? 1 : -1);
    }
    store(lv, updated, expr->operand()->type());
    const bool isPost =
        expr->op() == UnaryOp::PostInc || expr->op() == UnaryOp::PostDec;
    return isPost ? old : updated;
  }
  }
  return Value{std::int64_t{0}};
}

Value Interpreter::evalBinary(const BinaryExpr *expr) {
  const BinaryOp op = expr->op();

  if (op == BinaryOp::LAnd) {
    if (!truthy(evalExpr(expr->lhs())))
      return Value{std::int64_t{0}};
    return Value{static_cast<std::int64_t>(
        truthy(evalExpr(expr->rhs())) ? 1 : 0)};
  }
  if (op == BinaryOp::LOr) {
    if (truthy(evalExpr(expr->lhs())))
      return Value{std::int64_t{1}};
    return Value{static_cast<std::int64_t>(
        truthy(evalExpr(expr->rhs())) ? 1 : 0)};
  }
  if (op == BinaryOp::Comma) {
    evalExpr(expr->lhs());
    return evalExpr(expr->rhs());
  }

  if (isAssignmentOp(op)) {
    const Value rhs = evalExpr(expr->rhs());
    const LValue lv = evalLValue(expr->lhs());
    Value result;
    if (op == BinaryOp::Assign) {
      result = rhs;
    } else {
      const Value lhs = load(lv);
      // Rebuild the non-assign operator for the combine step.
      BinaryOp combine = BinaryOp::Add;
      switch (op) {
      case BinaryOp::MulAssign:
        combine = BinaryOp::Mul;
        break;
      case BinaryOp::DivAssign:
        combine = BinaryOp::Div;
        break;
      case BinaryOp::RemAssign:
        combine = BinaryOp::Rem;
        break;
      case BinaryOp::AddAssign:
        combine = BinaryOp::Add;
        break;
      case BinaryOp::SubAssign:
        combine = BinaryOp::Sub;
        break;
      case BinaryOp::ShlAssign:
        combine = BinaryOp::Shl;
        break;
      case BinaryOp::ShrAssign:
        combine = BinaryOp::Shr;
        break;
      case BinaryOp::AndAssign:
        combine = BinaryOp::BitAnd;
        break;
      case BinaryOp::XorAssign:
        combine = BinaryOp::BitXor;
        break;
      case BinaryOp::OrAssign:
        combine = BinaryOp::BitOr;
        break;
      default:
        break;
      }
      // Numeric combine (pointer compound assign unsupported).
      const bool isFloat = std::holds_alternative<double>(lhs) ||
                           std::holds_alternative<double>(rhs);
      if (isFloat) {
        const double a = asDouble(lhs);
        const double b = asDouble(rhs);
        double r = 0.0;
        switch (combine) {
        case BinaryOp::Mul:
          r = a * b;
          break;
        case BinaryOp::Div:
          r = a / b;
          break;
        case BinaryOp::Add:
          r = a + b;
          break;
        case BinaryOp::Sub:
          r = a - b;
          break;
        default:
          fail("invalid compound assignment on floating value");
        }
        result = r;
      } else {
        const std::int64_t a = asInt(lhs);
        const std::int64_t b = asInt(rhs);
        std::int64_t r = 0;
        switch (combine) {
        case BinaryOp::Mul:
          r = a * b;
          break;
        case BinaryOp::Div:
          if (b == 0)
            fail("integer division by zero");
          r = a / b;
          break;
        case BinaryOp::Rem:
          if (b == 0)
            fail("integer modulo by zero");
          r = a % b;
          break;
        case BinaryOp::Add:
          r = a + b;
          break;
        case BinaryOp::Sub:
          r = a - b;
          break;
        case BinaryOp::Shl:
          r = a << b;
          break;
        case BinaryOp::Shr:
          r = a >> b;
          break;
        case BinaryOp::BitAnd:
          r = a & b;
          break;
        case BinaryOp::BitXor:
          r = a ^ b;
          break;
        case BinaryOp::BitOr:
          r = a | b;
          break;
        default:
          break;
        }
        result = r;
      }
    }
    store(lv, result, expr->lhs()->type());
    return load(lv);
  }

  const Value lhs = evalExpr(expr->lhs());
  const Value rhs = evalExpr(expr->rhs());

  // Pointer arithmetic / comparisons.
  const bool lhsPtr = std::holds_alternative<PtrValue>(lhs);
  const bool rhsPtr = std::holds_alternative<PtrValue>(rhs);
  if (lhsPtr || rhsPtr) {
    if (op == BinaryOp::Add || op == BinaryOp::Sub) {
      if (lhsPtr && !rhsPtr) {
        PtrValue ptr = std::get<PtrValue>(lhs);
        const std::int64_t stride =
            static_cast<std::int64_t>(slotsOf(ptr.elemType));
        const std::int64_t n = asInt(rhs) * stride;
        ptr.offset += op == BinaryOp::Add ? n : -n;
        return Value{ptr};
      }
      if (rhsPtr && !lhsPtr && op == BinaryOp::Add) {
        PtrValue ptr = std::get<PtrValue>(rhs);
        ptr.offset +=
            asInt(lhs) * static_cast<std::int64_t>(slotsOf(ptr.elemType));
        return Value{ptr};
      }
      if (lhsPtr && rhsPtr && op == BinaryOp::Sub) {
        const PtrValue a = std::get<PtrValue>(lhs);
        const PtrValue b = std::get<PtrValue>(rhs);
        const std::int64_t stride = static_cast<std::int64_t>(
            std::max<std::uint64_t>(1, slotsOf(a.elemType)));
        return Value{(a.offset - b.offset) / stride};
      }
    }
    // Comparisons: compare (object, offset) pairs; integers compare as null.
    auto key = [](const Value &value) -> std::pair<std::int64_t, std::int64_t> {
      if (std::holds_alternative<PtrValue>(value)) {
        const PtrValue ptr = std::get<PtrValue>(value);
        return {ptr.objectId, ptr.offset};
      }
      return {-1, asInt(value)};
    };
    const auto a = key(lhs);
    const auto b = key(rhs);
    std::int64_t r = 0;
    switch (op) {
    case BinaryOp::EQ:
      r = a == b;
      break;
    case BinaryOp::NE:
      r = a != b;
      break;
    case BinaryOp::LT:
      r = a < b;
      break;
    case BinaryOp::GT:
      r = b < a;
      break;
    case BinaryOp::LE:
      r = !(b < a);
      break;
    case BinaryOp::GE:
      r = !(a < b);
      break;
    default:
      fail("unsupported pointer operation");
    }
    return Value{r};
  }

  const bool isFloat = std::holds_alternative<double>(lhs) ||
                       std::holds_alternative<double>(rhs);
  if (isFloat) {
    const double a = asDouble(lhs);
    const double b = asDouble(rhs);
    switch (op) {
    case BinaryOp::Mul:
      return Value{a * b};
    case BinaryOp::Div:
      return Value{a / b};
    case BinaryOp::Add:
      return Value{a + b};
    case BinaryOp::Sub:
      return Value{a - b};
    case BinaryOp::LT:
      return Value{static_cast<std::int64_t>(a < b)};
    case BinaryOp::GT:
      return Value{static_cast<std::int64_t>(a > b)};
    case BinaryOp::LE:
      return Value{static_cast<std::int64_t>(a <= b)};
    case BinaryOp::GE:
      return Value{static_cast<std::int64_t>(a >= b)};
    case BinaryOp::EQ:
      return Value{static_cast<std::int64_t>(a == b)};
    case BinaryOp::NE:
      return Value{static_cast<std::int64_t>(a != b)};
    default:
      fail("invalid floating-point operation");
    }
  }

  const std::int64_t a = asInt(lhs);
  const std::int64_t b = asInt(rhs);
  switch (op) {
  case BinaryOp::Mul:
    return Value{a * b};
  case BinaryOp::Div:
    if (b == 0)
      fail("integer division by zero");
    return Value{a / b};
  case BinaryOp::Rem:
    if (b == 0)
      fail("integer modulo by zero");
    return Value{a % b};
  case BinaryOp::Add:
    return Value{a + b};
  case BinaryOp::Sub:
    return Value{a - b};
  case BinaryOp::Shl:
    return Value{a << b};
  case BinaryOp::Shr:
    return Value{a >> b};
  case BinaryOp::LT:
    return Value{static_cast<std::int64_t>(a < b)};
  case BinaryOp::GT:
    return Value{static_cast<std::int64_t>(a > b)};
  case BinaryOp::LE:
    return Value{static_cast<std::int64_t>(a <= b)};
  case BinaryOp::GE:
    return Value{static_cast<std::int64_t>(a >= b)};
  case BinaryOp::EQ:
    return Value{static_cast<std::int64_t>(a == b)};
  case BinaryOp::NE:
    return Value{static_cast<std::int64_t>(a != b)};
  case BinaryOp::BitAnd:
    return Value{a & b};
  case BinaryOp::BitXor:
    return Value{a ^ b};
  case BinaryOp::BitOr:
    return Value{a | b};
  default:
    fail("unsupported integer operation");
  }
  return Value{std::int64_t{0}};
}

// ---------------------------------------------------------------------------
// Calls & builtins
// ---------------------------------------------------------------------------

Value Interpreter::evalCall(const CallExpr *expr) {
  std::vector<Value> args;
  args.reserve(expr->args().size());
  for (const Expr *arg : expr->args())
    args.push_back(evalExpr(arg));

  if (expr->callee() != nullptr && expr->callee()->isDefined())
    return callFunction(expr->callee(), std::move(args));

  bool handled = false;
  Value result = builtinCall(expr->calleeName(), expr, args, handled);
  if (handled)
    return result;
  fail("call to unknown function '" + expr->calleeName() + "'");
  return Value{std::int64_t{0}};
}

std::string Interpreter::cString(const Value &value) {
  if (!std::holds_alternative<PtrValue>(value))
    return {};
  const PtrValue ptr = std::get<PtrValue>(value);
  if (ptr.isNull())
    return {};
  const MemoryObject &obj = *objects_[static_cast<std::size_t>(ptr.objectId)];
  std::string out;
  for (std::size_t i = static_cast<std::size_t>(ptr.offset);
       i < obj.host.size(); ++i) {
    const std::int64_t c = asInt(obj.host[i]);
    if (c == 0)
      break;
    out.push_back(static_cast<char>(c));
  }
  return out;
}

void Interpreter::doPrintf(const std::vector<Value> &args,
                           const CallExpr *expr) {
  std::string format;
  const Expr *first =
      expr->args().empty() ? nullptr : ignoreParensAndCasts(expr->args()[0]);
  if (first != nullptr && first->kind() == ExprKind::StringLiteral)
    format = static_cast<const StringLiteralExpr *>(first)->value();
  else if (!args.empty())
    format = cString(args[0]);

  std::string out;
  std::size_t argIndex = 1;
  char buffer[128];
  for (std::size_t i = 0; i < format.size(); ++i) {
    if (format[i] != '%') {
      out.push_back(format[i]);
      continue;
    }
    if (i + 1 < format.size() && format[i + 1] == '%') {
      out.push_back('%');
      ++i;
      continue;
    }
    // Parse the conversion spec: %[flags][width][.prec][length]conv
    std::string spec = "%";
    ++i;
    while (i < format.size() &&
           (std::isdigit(static_cast<unsigned char>(format[i])) ||
            format[i] == '.' || format[i] == '-' || format[i] == '+' ||
            format[i] == ' ' || format[i] == '#' || format[i] == '0')) {
      spec.push_back(format[i]);
      ++i;
    }
    while (i < format.size() && (format[i] == 'l' || format[i] == 'h' ||
                                 format[i] == 'z'))
      ++i; // drop length modifiers; we rebuild them
    if (i >= format.size())
      break;
    const char conv = format[i];
    const Value arg = argIndex < args.size() ? args[argIndex]
                                             : Value{std::int64_t{0}};
    ++argIndex;
    switch (conv) {
    case 'd':
    case 'i':
    case 'u':
    case 'x':
    case 'X': {
      spec += "ll";
      spec.push_back(conv == 'u' ? 'd' : conv); // render unsigned as signed
      std::snprintf(buffer, sizeof buffer, spec.c_str(),
                    static_cast<long long>(asInt(arg)));
      out += buffer;
      break;
    }
    case 'f':
    case 'e':
    case 'E':
    case 'g':
    case 'G': {
      spec.push_back(conv);
      std::snprintf(buffer, sizeof buffer, spec.c_str(), asDouble(arg));
      out += buffer;
      break;
    }
    case 'c': {
      out.push_back(static_cast<char>(asInt(arg)));
      break;
    }
    case 's': {
      out += cString(arg);
      break;
    }
    default:
      out.push_back(conv);
      break;
    }
  }
  output_ += out;
}

Value Interpreter::builtinCall(const std::string &name, const CallExpr *expr,
                               std::vector<Value> &args, bool &handled) {
  handled = true;
  auto arg = [&](std::size_t i) -> Value {
    return i < args.size() ? args[i] : Value{std::int64_t{0}};
  };
  auto d = [&](std::size_t i) { return asDouble(arg(i)); };

  if (name == "exp")
    return Value{std::exp(d(0))};
  if (name == "expf")
    return Value{static_cast<double>(std::exp(static_cast<float>(d(0))))};
  if (name == "sqrt" || name == "sqrtf")
    return Value{std::sqrt(d(0))};
  if (name == "fabs" || name == "fabsf")
    return Value{std::fabs(d(0))};
  if (name == "pow" || name == "powf")
    return Value{std::pow(d(0), d(1))};
  if (name == "log" || name == "logf")
    return Value{std::log(d(0))};
  if (name == "log2")
    return Value{std::log2(d(0))};
  if (name == "sin" || name == "sinf")
    return Value{std::sin(d(0))};
  if (name == "cos" || name == "cosf")
    return Value{std::cos(d(0))};
  if (name == "tan")
    return Value{std::tan(d(0))};
  if (name == "atan")
    return Value{std::atan(d(0))};
  if (name == "floor")
    return Value{std::floor(d(0))};
  if (name == "ceil")
    return Value{std::ceil(d(0))};
  if (name == "cbrt")
    return Value{std::cbrt(d(0))};
  if (name == "fmin" || name == "fminf")
    return Value{std::fmin(d(0), d(1))};
  if (name == "fmax" || name == "fmaxf")
    return Value{std::fmax(d(0), d(1))};
  if (name == "abs")
    return Value{std::llabs(asInt(arg(0)))};
  if (name == "rand") {
    // xorshift*: deterministic across platforms.
    randState_ ^= randState_ >> 12;
    randState_ ^= randState_ << 25;
    randState_ ^= randState_ >> 27;
    return Value{static_cast<std::int64_t>(
        (randState_ * 0x2545F4914F6CDD1DULL) >> 40 & 0x7FFF)};
  }
  if (name == "srand") {
    randState_ = static_cast<std::uint64_t>(asInt(arg(0))) * 2654435761u + 1;
    return Value{std::int64_t{0}};
  }
  if (name == "malloc") {
    const std::uint64_t bytes = static_cast<std::uint64_t>(asInt(arg(0)));
    const int id = createUntypedObject("<malloc>", bytes);
    return Value{PtrValue{id, 0, nullptr}};
  }
  if (name == "calloc") {
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(asInt(arg(0)) * asInt(arg(1)));
    const int id = createUntypedObject("<calloc>", bytes);
    return Value{PtrValue{id, 0, nullptr}};
  }
  if (name == "free") {
    if (std::holds_alternative<PtrValue>(arg(0))) {
      const PtrValue ptr = std::get<PtrValue>(arg(0));
      if (!ptr.isNull())
        object(ptr.objectId).freed = true;
    }
    return Value{std::int64_t{0}};
  }
  if (name == "memset") {
    const PtrValue ptr = std::get<PtrValue>(arg(0));
    if (!ptr.isNull()) {
      MemoryObject &obj = object(ptr.objectId);
      auto &buffer = activeBuffer(obj);
      const std::int64_t fill = asInt(arg(1));
      const std::uint64_t bytes = static_cast<std::uint64_t>(asInt(arg(2)));
      const std::uint64_t slots =
          std::min<std::uint64_t>(bytes / std::max<std::uint64_t>(
                                              1, obj.elemBytes),
                                  buffer.size() - ptr.offset);
      const bool isFloat =
          obj.elemType != nullptr && obj.elemType->isFloatingPoint();
      for (std::uint64_t i = 0; i < slots; ++i)
        buffer[static_cast<std::size_t>(ptr.offset) + i] =
            isFloat && fill == 0 ? Value{0.0} : Value{fill};
    }
    return Value{std::int64_t{0}};
  }
  if (name == "memcpy") {
    const PtrValue dst = std::get<PtrValue>(arg(0));
    const PtrValue src = std::get<PtrValue>(arg(1));
    if (!dst.isNull() && !src.isNull()) {
      MemoryObject &dstObj = object(dst.objectId);
      MemoryObject &srcObj = object(src.objectId);
      auto &dstBuf = activeBuffer(dstObj);
      auto &srcBuf = activeBuffer(srcObj);
      const std::uint64_t bytes = static_cast<std::uint64_t>(asInt(arg(2)));
      const std::uint64_t slots =
          bytes / std::max<std::uint64_t>(1, dstObj.elemBytes);
      for (std::uint64_t i = 0; i < slots; ++i) {
        const std::size_t from = static_cast<std::size_t>(src.offset) + i;
        const std::size_t to = static_cast<std::size_t>(dst.offset) + i;
        if (from < srcBuf.size() && to < dstBuf.size())
          dstBuf[to] = srcBuf[from];
      }
    }
    return Value{std::int64_t{0}};
  }
  if (name == "printf") {
    doPrintf(args, expr);
    return Value{std::int64_t{0}};
  }
  if (name == "exit")
    throw ExitSignal{asInt(arg(0))};
  if (name == "atoi")
    return Value{static_cast<std::int64_t>(
        std::strtoll(cString(arg(0)).c_str(), nullptr, 10))};

  handled = false;
  return Value{std::int64_t{0}};
}

// ---------------------------------------------------------------------------
// OpenMP execution
// ---------------------------------------------------------------------------

Interpreter::MapItem Interpreter::wholeObjectItem(int objectId,
                                                  sim::MapKind kind) {
  MapItem item;
  item.objectId = objectId;
  item.kind = kind;
  MemoryObject &obj = object(objectId);
  item.sliceLo = 0;
  item.sliceLen = obj.host.size();
  item.bytes = obj.byteSize;
  item.tag = obj.name;
  return item;
}

Interpreter::MapItem Interpreter::mapItemFor(const OmpObject &ompObject,
                                             sim::MapKind kind) {
  MapItem item;
  item.kind = kind;
  VarDecl *var = ompObject.var;
  if (var == nullptr)
    fail("unresolved variable in map clause");
  Value *binding = lookupBinding(var);
  if (binding == nullptr)
    fail("unbound variable '" + var->name() + "' in map clause");
  PtrValue base = std::get<PtrValue>(*binding);
  int objectId = base.objectId;
  if (var->type()->isPointer()) {
    // The mapped data is the pointee.
    const Value stored = object(base.objectId).host[0];
    if (!std::holds_alternative<PtrValue>(stored) ||
        std::get<PtrValue>(stored).isNull())
      fail("mapping null pointer '" + var->name() + "'");
    objectId = std::get<PtrValue>(stored).objectId;
  }
  MemoryObject &obj = object(objectId);
  item.objectId = objectId;
  item.tag = var->name();
  item.sliceLo = 0;
  item.sliceLen = obj.host.size();
  if (ompObject.sections.size() == 1) {
    const OmpArraySectionDim &dim = ompObject.sections[0];
    const std::uint64_t lower =
        dim.lower != nullptr
            ? static_cast<std::uint64_t>(asInt(evalExpr(dim.lower)))
            : 0;
    std::uint64_t length = obj.host.size() - std::min<std::uint64_t>(
                                                 lower, obj.host.size());
    if (dim.length != nullptr)
      length = static_cast<std::uint64_t>(asInt(evalExpr(dim.length)));
    else if (dim.lower != nullptr && dim.length == nullptr &&
             ompObject.spelling.find(':') == std::string::npos)
      length = 1; // plain a[i]
    item.sliceLo = lower;
    item.sliceLen = length;
  }
  item.bytes = item.sliceLen * obj.elemBytes;
  return item;
}

void Interpreter::coalesceMapItems(std::vector<MapItem> &items) {
  // OpenMP 5.2 / libomptarget semantics: list items of ONE construct that
  // refer to the same storage behave as a single entry whose map type is
  // the union of the item types (to + from = tofrom). Applying them
  // sequentially instead would let the present-table reference count
  // suppress every copy after the first — the aliased-pointer-parameter
  // bug class the differential oracle caught (map(to: src) map(from: dst)
  // with src == dst left the device image uninitialized).
  // Only OVERLAPPING slices merge: unioning disjoint sections would copy
  // (and charge) bytes neither item listed. Disjoint same-object items
  // stay separate entries against the per-object present table — a
  // pre-existing modeling granularity, not made worse here. A merge can
  // grow a slice into overlap with an earlier entry, so iterate to a
  // fixpoint (each pass shrinks the list or terminates).
  std::size_t before = items.size() + 1;
  while (items.size() < before) {
    before = items.size();
    std::vector<MapItem> merged;
    for (const MapItem &item : items) {
      MapItem *existing = nullptr;
      for (MapItem &candidate : merged) {
        if (candidate.objectId != item.objectId)
          continue;
        const bool overlaps =
            candidate.sliceLo < item.sliceLo + item.sliceLen &&
            item.sliceLo < candidate.sliceLo + candidate.sliceLen;
        if (overlaps)
          existing = &candidate;
      }
      if (existing == nullptr) {
        merged.push_back(item);
        continue;
      }
      existing->kind = joinMapKind(existing->kind, item.kind);
      const std::uint64_t lo = std::min(existing->sliceLo, item.sliceLo);
      const std::uint64_t end = std::max(
          existing->sliceLo + existing->sliceLen,
          item.sliceLo + item.sliceLen);
      existing->sliceLo = lo;
      existing->sliceLen = end - lo;
      existing->bytes = existing->sliceLen * object(item.objectId).elemBytes;
    }
    items = std::move(merged);
  }
}

sim::MapKind Interpreter::joinMapKind(sim::MapKind a, sim::MapKind b) {
  using sim::MapKind;
  // Unmapping kinds never strengthen movement; the movement operand wins.
  const auto isUnmap = [](MapKind kind) {
    return kind == MapKind::Release || kind == MapKind::Delete;
  };
  if (isUnmap(a))
    return b;
  if (isUnmap(b))
    return a;
  if (a == MapKind::Alloc)
    return b;
  if (b == MapKind::Alloc)
    return a;
  if (a == b)
    return a;
  return MapKind::ToFrom; // to ⊔ from (or either ⊔ tofrom)
}

void Interpreter::copySlice(MemoryObject &obj, bool toDevice,
                            std::uint64_t lo, std::uint64_t len) {
  if (!obj.deviceAllocated)
    return;
  const std::uint64_t end =
      std::min<std::uint64_t>(lo + len, obj.host.size());
  for (std::uint64_t i = lo; i < end; ++i) {
    if (toDevice)
      obj.device[static_cast<std::size_t>(i)] =
          obj.host[static_cast<std::size_t>(i)];
    else
      obj.host[static_cast<std::size_t>(i)] =
          obj.device[static_cast<std::size_t>(i)];
  }
}

void Interpreter::applyMapEnter(const MapItem &item) {
  MemoryObject &obj = object(item.objectId);
  const auto action =
      dev_->mapEnter(item.objectId, item.kind, item.bytes, item.tag);
  if (action.allocate) {
    obj.device.assign(obj.host.size(), Value{std::int64_t{0}});
    obj.deviceAllocated = true;
  }
  if (action.copyToDevice)
    copySlice(obj, /*toDevice=*/true, item.sliceLo, item.sliceLen);
}

void Interpreter::applyMapExit(const MapItem &item) {
  MemoryObject &obj = object(item.objectId);
  const auto action =
      dev_->mapExit(item.objectId, item.kind, item.bytes, item.tag);
  if (action.copyFromDevice)
    copySlice(obj, /*toDevice=*/false, item.sliceLo, item.sliceLen);
  if (action.deallocate) {
    obj.device.clear();
    obj.deviceAllocated = false;
  }
}

void Interpreter::enterOverlayRegion(const PlanOverlay::Region &region) {
  std::vector<MapItem> items;
  for (const PlanOverlay::MapEntry &entry : region.maps)
    items.push_back(mapItemFor(entry.object, toSimMapKind(entry.mapType)));
  coalesceMapItems(items);
  for (const MapItem &item : items)
    applyMapEnter(item);
  overlayRegionStack_.emplace_back(&region, std::move(items));
}

void Interpreter::exitOverlayRegion(const PlanOverlay::Region &region) {
  for (auto it = overlayRegionStack_.rbegin();
       it != overlayRegionStack_.rend(); ++it) {
    if (it->first != &region)
      continue;
    // Same items (entry-evaluated extents), reverse order — `target data`
    // exit semantics.
    for (auto item = it->second.rbegin(); item != it->second.rend(); ++item)
      applyMapExit(*item);
    overlayRegionStack_.erase(std::next(it).base());
    return;
  }
}

void Interpreter::applyOverlayUpdate(const PlanOverlay::Update &update) {
  MapItem item = mapItemFor(update.object, sim::MapKind::ToFrom);
  MemoryObject &obj = object(item.objectId);
  const bool copied =
      update.toDevice ? dev_->updateTo(item.objectId, item.bytes, item.tag)
                      : dev_->updateFrom(item.objectId, item.bytes, item.tag);
  if (copied)
    copySlice(obj, update.toDevice, item.sliceLo, item.sliceLen);
}

void Interpreter::overlayLoopBody(const Stmt *loop,
                                  ir::UpdatePlacement placement) {
  if (overlay_ == nullptr)
    return;
  const auto &byAnchor = placement == ir::UpdatePlacement::BodyBegin
                             ? overlayUpdatesBodyBegin_
                             : overlayUpdatesBodyEnd_;
  if (auto it = byAnchor.find(loop); it != byAnchor.end())
    for (const PlanOverlay::Update *update : it->second)
      applyOverlayUpdate(*update);
}

std::vector<VarDecl *>
Interpreter::kernelReferencedVars(const OmpDirectiveStmt *directive) {
  RefCollector collector;
  for (const OmpClause &clause : directive->clauses())
    for (const OmpObject &object : clause.objects)
      collector.addVar(object.var);
  collector.visitStmt(directive->associated());
  return collector.ordered;
}

void Interpreter::execOmp(const OmpDirectiveStmt *directive) {
  switch (directive->directive()) {
  case OmpDirectiveKind::TargetData: {
    std::vector<MapItem> items;
    for (const OmpClause &clause : directive->clauses()) {
      if (clause.kind != OmpClauseKind::Map)
        continue;
      for (const OmpObject &object : clause.objects)
        items.push_back(mapItemFor(object, toSimMapKind(clause.mapType)));
    }
    coalesceMapItems(items);
    for (const MapItem &item : items)
      applyMapEnter(item);
    execStmt(directive->associated());
    for (auto it = items.rbegin(); it != items.rend(); ++it)
      applyMapExit(*it);
    return;
  }
  case OmpDirectiveKind::TargetEnterData: {
    std::vector<MapItem> items;
    for (const OmpClause &clause : directive->clauses()) {
      if (clause.kind != OmpClauseKind::Map)
        continue;
      for (const OmpObject &object : clause.objects)
        items.push_back(mapItemFor(object, toSimMapKind(clause.mapType)));
    }
    coalesceMapItems(items);
    for (const MapItem &item : items)
      applyMapEnter(item);
    return;
  }
  case OmpDirectiveKind::TargetExitData: {
    std::vector<MapItem> items;
    for (const OmpClause &clause : directive->clauses()) {
      if (clause.kind != OmpClauseKind::Map)
        continue;
      for (const OmpObject &object : clause.objects)
        items.push_back(mapItemFor(object, toSimMapKind(clause.mapType)));
    }
    coalesceMapItems(items);
    for (const MapItem &item : items)
      applyMapExit(item);
    return;
  }
  case OmpDirectiveKind::TargetUpdate: {
    for (const OmpClause &clause : directive->clauses()) {
      if (clause.kind != OmpClauseKind::UpdateTo &&
          clause.kind != OmpClauseKind::UpdateFrom)
        continue;
      const bool to = clause.kind == OmpClauseKind::UpdateTo;
      for (const OmpObject &ompObject : clause.objects) {
        MapItem item = mapItemFor(ompObject, sim::MapKind::ToFrom);
        MemoryObject &obj = object(item.objectId);
        const bool copied =
            to ? dev_->updateTo(item.objectId, item.bytes, item.tag)
               : dev_->updateFrom(item.objectId, item.bytes, item.tag);
        if (copied)
          copySlice(obj, to, item.sliceLo, item.sliceLen);
      }
    }
    return;
  }
  case OmpDirectiveKind::ParallelFor:
    execStmt(directive->associated());
    return;
  default:
    break;
  }
  if (directive->isOffloadKernel()) {
    execKernel(directive);
    return;
  }
  execStmt(directive->associated());
}

void Interpreter::execKernel(const OmpDirectiveStmt *directive) {
  // Gather explicit clauses.
  std::vector<MapItem> explicitItems;
  std::set<VarDecl *> explicitlyMapped;
  std::set<VarDecl *> firstprivateVars;
  std::set<VarDecl *> privateVars;
  std::set<VarDecl *> reductionVars;
  for (const OmpClause &clause : directive->clauses()) {
    switch (clause.kind) {
    case OmpClauseKind::Map:
      for (const OmpObject &object : clause.objects) {
        explicitItems.push_back(
            mapItemFor(object, toSimMapKind(clause.mapType)));
        explicitlyMapped.insert(object.var);
      }
      break;
    case OmpClauseKind::FirstPrivate:
      for (const OmpObject &object : clause.objects)
        firstprivateVars.insert(object.var);
      break;
    case OmpClauseKind::Private:
      for (const OmpObject &object : clause.objects)
        privateVars.insert(object.var);
      break;
    case OmpClauseKind::Reduction:
      for (const OmpObject &object : clause.objects)
        reductionVars.insert(object.var);
      break;
    default:
      break;
    }
  }
  // Overlay items join the kernel's clause set exactly as the rewriter's
  // pragma appends would: sole-kernel region maps become explicit map
  // items, firstprivates join the firstprivate set.
  if (overlay_ != nullptr) {
    for (const PlanOverlay::Region &region : overlay_->regions) {
      if (region.soleKernel != directive)
        continue;
      for (const PlanOverlay::MapEntry &entry : region.maps) {
        explicitItems.push_back(
            mapItemFor(entry.object, toSimMapKind(entry.mapType)));
        explicitlyMapped.insert(entry.object.var);
      }
    }
    for (const PlanOverlay::Firstprivate &fp : overlay_->firstprivates)
      if (fp.kernel == directive && fp.var != nullptr)
        firstprivateVars.insert(fp.var);
  }
  coalesceMapItems(explicitItems);

  // Implicit data-mapping rules (OpenMP 5.2): unmapped aggregates referenced
  // by the kernel map tofrom for the kernel's duration; unmapped scalars are
  // firstprivate; reduction variables map tofrom.
  std::vector<MapItem> implicitItems;
  std::vector<VarDecl *> implicitFirstprivate;
  std::set<int> mappedObjects;
  for (const MapItem &item : explicitItems)
    mappedObjects.insert(item.objectId);

  for (VarDecl *var : kernelReferencedVars(directive)) {
    if (explicitlyMapped.count(var) || firstprivateVars.count(var) ||
        privateVars.count(var))
      continue;
    Value *binding = lookupBinding(var);
    if (binding == nullptr)
      continue; // function name or unresolvable: not data
    const PtrValue base = std::get<PtrValue>(*binding);
    if (reductionVars.count(var)) {
      // Reduction implies map(tofrom: var).
      MapItem item = wholeObjectItem(base.objectId, sim::MapKind::ToFrom);
      item.tag = var->name();
      if (!dev_->isPresent(item.objectId) &&
          !mappedObjects.count(item.objectId)) {
        implicitItems.push_back(item);
        mappedObjects.insert(item.objectId);
      }
      continue;
    }
    const bool aggregate = aggregateLike(var);
    if (!aggregate) {
      implicitFirstprivate.push_back(var);
      continue;
    }
    // Aggregate: resolve the data object (pointee for pointer vars).
    int objectId = base.objectId;
    if (var->type()->isPointer()) {
      const Value stored = object(base.objectId).host[0];
      if (!std::holds_alternative<PtrValue>(stored) ||
          std::get<PtrValue>(stored).isNull())
        continue; // null pointer never dereferenced (or about to fail)
      objectId = std::get<PtrValue>(stored).objectId;
    }
    if (dev_->isPresent(objectId) || mappedObjects.count(objectId))
      continue;
    MapItem item = wholeObjectItem(objectId, sim::MapKind::ToFrom);
    item.tag = var->name();
    implicitItems.push_back(item);
    mappedObjects.insert(objectId);
  }

  for (const MapItem &item : explicitItems)
    applyMapEnter(item);
  for (const MapItem &item : implicitItems)
    applyMapEnter(item);

  ledger_.recordKernelLaunch();

  // firstprivate copies: fresh host-side objects the kernel reads/writes;
  // values are passed as kernel arguments (no memcpy — the optimization the
  // paper leverages).
  frames_.emplace_back();
  for (VarDecl *var : firstprivateVars) {
    if (var == nullptr)
      continue;
    Value *binding = lookupBinding(var);
    if (binding == nullptr)
      continue;
    const PtrValue base = std::get<PtrValue>(*binding);
    const int id = createObject(var->name() + ".fp", var->type(), 1);
    object(id).host[0] = object(base.objectId).host[0];
    frames_.back().bindings[var] = Value{PtrValue{id, 0, var->type()}};
  }
  for (VarDecl *var : implicitFirstprivate) {
    Value *binding = lookupBinding(var);
    if (binding == nullptr)
      continue;
    const PtrValue base = std::get<PtrValue>(*binding);
    const int id = createObject(var->name() + ".ifp", var->type(), 1);
    object(id).host[0] =
        object(base.objectId).host[static_cast<std::size_t>(base.offset)];
    frames_.back().bindings[var] = Value{PtrValue{id, 0, var->type()}};
  }
  for (VarDecl *var : privateVars) {
    if (var == nullptr)
      continue;
    const int id = createObject(var->name() + ".priv", var->type(), 1);
    frames_.back().bindings[var] = Value{PtrValue{id, 0, var->type()}};
  }

  const bool previousMode = deviceMode_;
  deviceMode_ = true;
  execStmt(directive->associated());
  deviceMode_ = previousMode;

  frames_.pop_back();

  for (auto it = implicitItems.rbegin(); it != implicitItems.rend(); ++it)
    applyMapExit(*it);
  for (auto it = explicitItems.rbegin(); it != explicitItems.rend(); ++it)
    applyMapExit(*it);
}

RunResult runProgram(const std::string &source, InterpOptions options) {
  SourceManager sourceManager("program.c", source);
  ASTContext context;
  DiagnosticEngine diags;
  RunResult result;
  if (!parseSource(sourceManager, context, diags)) {
    result.error = "parse error:\n" + diags.summary();
    return result;
  }
  Interpreter interpreter(context.unit(), options);
  return interpreter.run();
}

} // namespace ompdart::interp
