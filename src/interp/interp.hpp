// Tree-walking interpreter for the C subset with OpenMP offload semantics.
//
// Executes a parsed program against the simulated device runtime
// (sim::DeviceDataEnvironment): host code reads/writes host buffers, kernel
// code reads/writes device buffers of present objects, and every map /
// update / implicit-mapping decision produces ledger traffic exactly as the
// OpenMP 5.2 rules dictate. This is the testbed substitute that regenerates
// the paper's Figures 3-6 without a GPU:
//   - implicit rules at kernel launch: unmapped aggregates map tofrom for
//     the kernel's duration; unmapped scalars are firstprivate (no memcpy);
//     reduction variables map tofrom,
//   - explicit target data / target update / firstprivate honored with
//     reference counting,
//   - program output (printf) is captured so variant outputs can be diffed
//     for the paper's correctness check,
//   - host/device op counts feed the analytic cost model.
#pragma once

#include "frontend/ast.hpp"
#include "mapping/ir.hpp"
#include "sim/runtime.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace ompdart::interp {

/// A typed pointer into a memory object (offset in elements/slots).
struct PtrValue {
  int objectId = -1;
  std::int64_t offset = 0;
  /// Type of the pointed-to element (for pointer arithmetic strides).
  const Type *elemType = nullptr;

  [[nodiscard]] bool isNull() const { return objectId < 0; }
};

using Value = std::variant<std::int64_t, double, PtrValue>;

/// One allocation: a named slot buffer with host and device images.
struct MemoryObject {
  int id = -1;
  std::string name;
  const Type *elemType = nullptr; ///< scalar element type of each slot
  std::uint64_t elemBytes = 8;
  std::uint64_t byteSize = 0;
  std::vector<Value> host;
  std::vector<Value> device;
  bool deviceAllocated = false;
  bool freed = false;
  bool untyped = false; ///< fresh malloc before the pointee type is known
};

struct InterpOptions {
  /// Abort guard for runaway programs (ops across host+device).
  std::uint64_t maxOps = 400'000'000;
};

struct RunResult {
  bool ok = false;
  std::string error;
  /// Captured printf output; used for correctness diffs across variants.
  std::string output;
  std::int64_t exitCode = 0;
  sim::TransferLedger ledger;
};

/// A mapping plan resolved against the executing AST, applied during
/// execution *without* rewriting the source (the ApplyToInterpBackend
/// path): region entries/exits fire around the anchor statements, update
/// directives fire at their placements, and firstprivate items join the
/// kernel's clause set. Anchors are statements of the interpreted unit;
/// section expressions are synthesized by the backend (which owns them).
struct PlanOverlay {
  struct MapEntry {
    OmpObject object; ///< var + synthesized array-section expressions
    OmpMapType mapType = OmpMapType::ToFrom;
  };
  struct Region {
    const Stmt *startStmt = nullptr;
    const Stmt *endStmt = nullptr;
    /// Sole-kernel region: the maps behave as explicit clauses of this
    /// kernel's pragma (startStmt/endStmt stay null), exactly like the
    /// rewriter's clause-append path.
    const OmpDirectiveStmt *soleKernel = nullptr;
    std::vector<MapEntry> maps;
  };
  struct Update {
    const Stmt *anchor = nullptr;
    bool toDevice = true;
    ir::UpdatePlacement placement = ir::UpdatePlacement::Before;
    OmpObject object;
  };
  struct Firstprivate {
    const OmpDirectiveStmt *kernel = nullptr;
    VarDecl *var = nullptr;
  };
  std::vector<Region> regions;
  std::vector<Update> updates;
  std::vector<Firstprivate> firstprivates;

  [[nodiscard]] bool empty() const {
    return regions.empty() && updates.empty() && firstprivates.empty();
  }
};

/// Parses and runs a full program (entry point: `main`).
[[nodiscard]] RunResult runProgram(const std::string &source,
                                   InterpOptions options = {});

/// Runs an already-parsed unit (the unit must outlive the call).
class Interpreter {
public:
  Interpreter(const TranslationUnit &unit, InterpOptions options = {},
              const PlanOverlay *overlay = nullptr);

  [[nodiscard]] RunResult run();

private:
  // --- memory ---
  MemoryObject &object(int id) { return *objects_[static_cast<size_t>(id)]; }
  int createObject(std::string name, const Type *elemType,
                   std::uint64_t slots);
  int createUntypedObject(std::string name, std::uint64_t bytes);
  void retypeObject(MemoryObject &obj, const Type *elemType);
  std::vector<Value> &activeBuffer(MemoryObject &obj);

  // --- environment ---
  struct Frame {
    std::map<VarDecl *, Value> bindings;
  };
  Value *lookupBinding(VarDecl *var);
  void bind(VarDecl *var, Value value);

  // --- execution ---
  void execStmt(const Stmt *stmt);
  void execStmtImpl(const Stmt *stmt);
  void execCompound(const CompoundStmt *stmt);
  void execDecl(const DeclStmt *stmt);
  void execOmp(const OmpDirectiveStmt *directive);
  void execKernel(const OmpDirectiveStmt *directive);
  Value callFunction(FunctionDecl *fn, std::vector<Value> args);

  Value evalExpr(const Expr *expr);
  Value evalBinary(const BinaryExpr *expr);
  Value evalUnary(const UnaryExpr *expr);
  Value evalCall(const CallExpr *expr);

  /// An lvalue: a slot in an object.
  struct LValue {
    int objectId = -1;
    std::int64_t slot = 0;
  };
  LValue evalLValue(const Expr *expr);
  Value load(const LValue &lv);
  void store(const LValue &lv, Value value, const Type *targetType);

  /// Resolves an expression to pointer-like {object, offset, elemType}.
  PtrValue evalPointerLike(const Expr *expr);

  // --- OpenMP helpers ---
  struct MapItem {
    int objectId = -1;
    sim::MapKind kind = sim::MapKind::ToFrom;
    std::uint64_t sliceLo = 0;   ///< slot index
    std::uint64_t sliceLen = 0;  ///< slots
    std::uint64_t bytes = 0;
    std::string tag;
  };
  MapItem mapItemFor(const OmpObject &object, sim::MapKind kind);
  MapItem wholeObjectItem(int objectId, sim::MapKind kind);
  /// Merges same-object items of one construct into a single entry with
  /// the union of their map types (OpenMP 5.2 same-storage rule).
  void coalesceMapItems(std::vector<MapItem> &items);
  static sim::MapKind joinMapKind(sim::MapKind a, sim::MapKind b);
  void applyMapEnter(const MapItem &item);
  void applyMapExit(const MapItem &item);
  void copySlice(MemoryObject &obj, bool toDevice, std::uint64_t lo,
                 std::uint64_t len);
  /// Variables referenced inside a kernel (excluding kernel-local decls).
  std::vector<VarDecl *> kernelReferencedVars(const OmpDirectiveStmt *d);

  // --- plan overlay ---
  void enterOverlayRegion(const PlanOverlay::Region &region);
  void exitOverlayRegion(const PlanOverlay::Region &region);
  void applyOverlayUpdate(const PlanOverlay::Update &update);
  /// BodyBegin/BodyEnd updates anchored at `loop`, fired per iteration.
  void overlayLoopBody(const Stmt *loop, ir::UpdatePlacement placement);

  // --- values ---
  static double asDouble(const Value &value);
  static std::int64_t asInt(const Value &value);
  static bool truthy(const Value &value);
  Value convert(const Value &value, const Type *type);
  [[nodiscard]] std::uint64_t slotsOf(const Type *type) const;

  // --- builtins ---
  Value builtinCall(const std::string &name, const CallExpr *expr,
                    std::vector<Value> &args, bool &handled);
  void doPrintf(const std::vector<Value> &args, const CallExpr *expr);
  std::string cString(const Value &value);

  void countOp();
  [[noreturn]] void fail(const std::string &message);

  const TranslationUnit &unit_;
  InterpOptions options_;
  const PlanOverlay *overlay_ = nullptr;
  /// Anchor-indexed overlay events, built once in the constructor so the
  /// per-statement hooks are O(1) lookups on the interpreter's hot path.
  std::unordered_map<const Stmt *, std::vector<const PlanOverlay::Region *>>
      overlayRegionStarts_;
  std::unordered_map<const Stmt *, std::vector<const PlanOverlay::Region *>>
      overlayRegionEnds_;
  std::unordered_map<const Stmt *, std::vector<const PlanOverlay::Update *>>
      overlayUpdatesBefore_;
  std::unordered_map<const Stmt *, std::vector<const PlanOverlay::Update *>>
      overlayUpdatesAfter_;
  std::unordered_map<const Stmt *, std::vector<const PlanOverlay::Update *>>
      overlayUpdatesBodyBegin_;
  std::unordered_map<const Stmt *, std::vector<const PlanOverlay::Update *>>
      overlayUpdatesBodyEnd_;
  /// Entry-evaluated map items of currently open overlay regions (exit
  /// re-uses them, mirroring `target data` semantics).
  std::vector<std::pair<const PlanOverlay::Region *, std::vector<MapItem>>>
      overlayRegionStack_;
  std::vector<std::unique_ptr<MemoryObject>> objects_;
  std::vector<Frame> frames_;
  Frame globals_;
  bool deviceMode_ = false;
  std::uint64_t opCount_ = 0;
  sim::TransferLedger ledger_;
  std::unique_ptr<sim::DeviceDataEnvironment> dev_;
  std::string output_;
  std::uint64_t randState_ = 0x2545F4914F6CDD1DULL;
  std::map<const StringLiteralExpr *, int> stringObjects_;
};

} // namespace ompdart::interp
