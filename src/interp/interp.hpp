// Tree-walking interpreter for the C subset with OpenMP offload semantics.
//
// Executes a parsed program against the simulated device runtime
// (sim::DeviceDataEnvironment): host code reads/writes host buffers, kernel
// code reads/writes device buffers of present objects, and every map /
// update / implicit-mapping decision produces ledger traffic exactly as the
// OpenMP 5.2 rules dictate. This is the testbed substitute that regenerates
// the paper's Figures 3-6 without a GPU:
//   - implicit rules at kernel launch: unmapped aggregates map tofrom for
//     the kernel's duration; unmapped scalars are firstprivate (no memcpy);
//     reduction variables map tofrom,
//   - explicit target data / target update / firstprivate honored with
//     reference counting,
//   - program output (printf) is captured so variant outputs can be diffed
//     for the paper's correctness check,
//   - host/device op counts feed the analytic cost model.
#pragma once

#include "frontend/ast.hpp"
#include "sim/runtime.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace ompdart::interp {

/// A typed pointer into a memory object (offset in elements/slots).
struct PtrValue {
  int objectId = -1;
  std::int64_t offset = 0;
  /// Type of the pointed-to element (for pointer arithmetic strides).
  const Type *elemType = nullptr;

  [[nodiscard]] bool isNull() const { return objectId < 0; }
};

using Value = std::variant<std::int64_t, double, PtrValue>;

/// One allocation: a named slot buffer with host and device images.
struct MemoryObject {
  int id = -1;
  std::string name;
  const Type *elemType = nullptr; ///< scalar element type of each slot
  std::uint64_t elemBytes = 8;
  std::uint64_t byteSize = 0;
  std::vector<Value> host;
  std::vector<Value> device;
  bool deviceAllocated = false;
  bool freed = false;
  bool untyped = false; ///< fresh malloc before the pointee type is known
};

struct InterpOptions {
  /// Abort guard for runaway programs (ops across host+device).
  std::uint64_t maxOps = 400'000'000;
};

struct RunResult {
  bool ok = false;
  std::string error;
  /// Captured printf output; used for correctness diffs across variants.
  std::string output;
  std::int64_t exitCode = 0;
  sim::TransferLedger ledger;
};

/// Parses and runs a full program (entry point: `main`).
[[nodiscard]] RunResult runProgram(const std::string &source,
                                   InterpOptions options = {});

/// Runs an already-parsed unit (the unit must outlive the call).
class Interpreter {
public:
  Interpreter(const TranslationUnit &unit, InterpOptions options = {});

  [[nodiscard]] RunResult run();

private:
  // --- memory ---
  MemoryObject &object(int id) { return *objects_[static_cast<size_t>(id)]; }
  int createObject(std::string name, const Type *elemType,
                   std::uint64_t slots);
  int createUntypedObject(std::string name, std::uint64_t bytes);
  void retypeObject(MemoryObject &obj, const Type *elemType);
  std::vector<Value> &activeBuffer(MemoryObject &obj);

  // --- environment ---
  struct Frame {
    std::map<VarDecl *, Value> bindings;
  };
  Value *lookupBinding(VarDecl *var);
  void bind(VarDecl *var, Value value);

  // --- execution ---
  void execStmt(const Stmt *stmt);
  void execCompound(const CompoundStmt *stmt);
  void execDecl(const DeclStmt *stmt);
  void execOmp(const OmpDirectiveStmt *directive);
  void execKernel(const OmpDirectiveStmt *directive);
  Value callFunction(FunctionDecl *fn, std::vector<Value> args);

  Value evalExpr(const Expr *expr);
  Value evalBinary(const BinaryExpr *expr);
  Value evalUnary(const UnaryExpr *expr);
  Value evalCall(const CallExpr *expr);

  /// An lvalue: a slot in an object.
  struct LValue {
    int objectId = -1;
    std::int64_t slot = 0;
  };
  LValue evalLValue(const Expr *expr);
  Value load(const LValue &lv);
  void store(const LValue &lv, Value value, const Type *targetType);

  /// Resolves an expression to pointer-like {object, offset, elemType}.
  PtrValue evalPointerLike(const Expr *expr);

  // --- OpenMP helpers ---
  struct MapItem {
    int objectId = -1;
    sim::MapKind kind = sim::MapKind::ToFrom;
    std::uint64_t sliceLo = 0;   ///< slot index
    std::uint64_t sliceLen = 0;  ///< slots
    std::uint64_t bytes = 0;
    std::string tag;
  };
  MapItem mapItemFor(const OmpObject &object, sim::MapKind kind);
  MapItem wholeObjectItem(int objectId, sim::MapKind kind);
  void applyMapEnter(const MapItem &item);
  void applyMapExit(const MapItem &item);
  void copySlice(MemoryObject &obj, bool toDevice, std::uint64_t lo,
                 std::uint64_t len);
  /// Variables referenced inside a kernel (excluding kernel-local decls).
  std::vector<VarDecl *> kernelReferencedVars(const OmpDirectiveStmt *d);

  // --- values ---
  static double asDouble(const Value &value);
  static std::int64_t asInt(const Value &value);
  static bool truthy(const Value &value);
  Value convert(const Value &value, const Type *type);
  [[nodiscard]] std::uint64_t slotsOf(const Type *type) const;

  // --- builtins ---
  Value builtinCall(const std::string &name, const CallExpr *expr,
                    std::vector<Value> &args, bool &handled);
  void doPrintf(const std::vector<Value> &args, const CallExpr *expr);
  std::string cString(const Value &value);

  void countOp();
  [[noreturn]] void fail(const std::string &message);

  const TranslationUnit &unit_;
  InterpOptions options_;
  std::vector<std::unique_ptr<MemoryObject>> objects_;
  std::vector<Frame> frames_;
  Frame globals_;
  bool deviceMode_ = false;
  std::uint64_t opCount_ = 0;
  sim::TransferLedger ledger_;
  std::unique_ptr<sim::DeviceDataEnvironment> dev_;
  std::string output_;
  std::uint64_t randState_ = 0x2545F4914F6CDD1DULL;
  std::map<const StringLiteralExpr *, int> stringObjects_;
};

} // namespace ompdart::interp
