#include "gen/shrink.hpp"

#include "frontend/ast.hpp"
#include "frontend/parser.hpp"
#include "support/diagnostics.hpp"
#include "support/source_manager.hpp"

#include <algorithm>
#include <memory>
#include <vector>

namespace ompdart::gen {

namespace {

/// Collects deletable source ranges: every statement reachable from a
/// compound body plus whole non-main function definitions. Ranges come
/// back largest-first so the greedy pass tries the biggest cut available.
class CandidateCollector {
public:
  void function(const FunctionDecl *fn) {
    if (fn->body() == nullptr)
      return;
    if (fn->name() != "main" && fn->range().isValid())
      add(fn->range());
    stmt(fn->body());
  }

  [[nodiscard]] std::vector<SourceRange> take() {
    std::sort(ranges_.begin(), ranges_.end(),
              [](const SourceRange &a, const SourceRange &b) {
                const std::size_t lenA = a.end.offset - a.begin.offset;
                const std::size_t lenB = b.end.offset - b.begin.offset;
                if (lenA != lenB)
                  return lenA > lenB;
                return a.begin.offset < b.begin.offset;
              });
    return std::move(ranges_);
  }

private:
  void add(SourceRange range) {
    if (range.isValid() && range.end.offset > range.begin.offset)
      ranges_.push_back(range);
  }

  void stmt(const Stmt *s) {
    if (s == nullptr)
      return;
    switch (s->kind()) {
    case StmtKind::Compound:
      for (const Stmt *child : static_cast<const CompoundStmt *>(s)->body()) {
        if (child->kind() != StmtKind::Null) // holes left by prior cuts
          add(child->range());
        stmt(child);
      }
      break;
    case StmtKind::If: {
      const auto *ifStmt = static_cast<const IfStmt *>(s);
      stmt(ifStmt->thenStmt());
      stmt(ifStmt->elseStmt());
      break;
    }
    case StmtKind::For:
      stmt(static_cast<const ForStmt *>(s)->body());
      break;
    case StmtKind::While:
      stmt(static_cast<const WhileStmt *>(s)->body());
      break;
    case StmtKind::Do:
      stmt(static_cast<const DoStmt *>(s)->body());
      break;
    case StmtKind::OmpDirective:
      stmt(static_cast<const OmpDirectiveStmt *>(s)->associated());
      break;
    default:
      break;
    }
  }

  std::vector<SourceRange> ranges_;
};

unsigned countStmts(const Stmt *s) {
  if (s == nullptr)
    return 0;
  switch (s->kind()) {
  case StmtKind::Compound: {
    unsigned count = 0;
    for (const Stmt *child : static_cast<const CompoundStmt *>(s)->body())
      count += countStmts(child);
    return count;
  }
  case StmtKind::If: {
    const auto *ifStmt = static_cast<const IfStmt *>(s);
    return 1 + countStmts(ifStmt->thenStmt()) + countStmts(ifStmt->elseStmt());
  }
  case StmtKind::For:
    return 1 + countStmts(static_cast<const ForStmt *>(s)->body());
  case StmtKind::While:
    return 1 + countStmts(static_cast<const WhileStmt *>(s)->body());
  case StmtKind::Do:
    return 1 + countStmts(static_cast<const DoStmt *>(s)->body());
  case StmtKind::OmpDirective:
    return 1 +
           countStmts(static_cast<const OmpDirectiveStmt *>(s)->associated());
  case StmtKind::Null:
    return 0; // deletion holes are not program statements
  default:
    return 1;
  }
}

/// Parses the manager's buffer into a fresh context; null on failure.
std::unique_ptr<ASTContext> parseInto(SourceManager &sm) {
  auto context = std::make_unique<ASTContext>();
  DiagnosticEngine diags;
  if (!parseSource(sm, *context, diags) || diags.hasErrors())
    return nullptr;
  return context;
}

/// Blanks `[begin, end)` with spaces (newlines kept so downstream line
/// numbers stay stable) and leaves one `;` so the hole still reads as a
/// statement wherever one was required.
std::string blankRange(const std::string &source, std::size_t begin,
                       std::size_t end) {
  std::string out = source;
  for (std::size_t i = begin; i < end && i < out.size(); ++i)
    if (out[i] != '\n')
      out[i] = ' ';
  if (begin < out.size())
    out[begin] = ';';
  return out;
}

} // namespace

unsigned countStatements(const std::string &source) {
  SourceManager sm("count.c", source);
  const auto context = parseInto(sm);
  if (context == nullptr)
    return 0;
  unsigned count = 0;
  for (const FunctionDecl *fn : context->unit().functions)
    if (fn->body() != nullptr)
      count += countStmts(fn->body());
  return count;
}

ShrinkResult shrinkProgram(const std::string &source,
                           const ShrinkPredicate &stillFails,
                           const ShrinkOptions &options) {
  ShrinkResult result;
  result.source = source;
  result.originalStatements = countStatements(source);
  result.finalStatements = result.originalStatements;
  if (result.originalStatements == 0 || !stillFails(source))
    return result; // not parseable / not failing: nothing to minimize

  bool progressed = true;
  while (progressed && result.deletions < options.maxDeletions &&
         result.attempts < options.maxAttempts) {
    progressed = false;
    SourceManager sm("shrink.c", result.source);
    const auto context = parseInto(sm);
    if (context == nullptr)
      break; // should not happen: the kept source always parses
    CandidateCollector collector;
    for (const FunctionDecl *fn : context->unit().functions)
      collector.function(fn);
    for (const SourceRange &range : collector.take()) {
      if (result.attempts >= options.maxAttempts)
        break;
      const std::string candidate =
          blankRange(result.source, range.begin.offset, range.end.offset);
      if (candidate == result.source)
        continue;
      ++result.attempts;
      if (stillFails(candidate)) {
        result.source = candidate;
        ++result.deletions;
        progressed = true;
        // Ranges refer to the pre-deletion text; re-parse before the next
        // cut.
        break;
      }
    }
  }
  // Cosmetic cleanup, still predicate-guarded: drop whole lines that are
  // only blanks/semicolons (the holes the cuts left). A hole that is
  // load-bearing syntax (a null loop body) fails the predicate and stays.
  bool cleaned = true;
  while (cleaned && result.attempts < options.maxAttempts) {
    cleaned = false;
    std::size_t lineBegin = 0;
    while (lineBegin < result.source.size()) {
      std::size_t lineEnd = result.source.find('\n', lineBegin);
      if (lineEnd == std::string::npos)
        lineEnd = result.source.size();
      else
        ++lineEnd; // include the newline
      const std::string line =
          result.source.substr(lineBegin, lineEnd - lineBegin);
      const bool removable =
          !line.empty() &&
          line.find_first_not_of(" ;\t\n") == std::string::npos &&
          line.find(';') != std::string::npos;
      if (removable) {
        std::string candidate = result.source;
        candidate.erase(lineBegin, lineEnd - lineBegin);
        ++result.attempts;
        if (countStatements(candidate) > 0 && stillFails(candidate)) {
          result.source = std::move(candidate);
          cleaned = true;
          continue; // same offset: the next line slid up
        }
      }
      lineBegin = lineEnd;
    }
  }
  result.finalStatements = countStatements(result.source);
  return result;
}

} // namespace ompdart::gen
