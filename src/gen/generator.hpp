// Seeded, deterministic random-program generator for the differential
// plan-correctness oracle (src/verify/).
//
// Every program is well-formed C in the tool's input subset and executes
// deterministically under the interpreter (interp's rand() is a fixed-seed
// PRNG), so a seed fully determines the program text AND its observable
// behaviour. The grammar spans the scenario space the paper's §V evaluation
// samples by hand:
//   - global scalars, arrays (double/int) and a config struct read by
//     kernels and mutated by host code,
//   - offload kernels with read, write and read-write access mixes,
//     data-parallel branches, device-callable helper functions and
//     reduction-into-scalar patterns,
//   - host interleavings (read loops, write loops, scalar bumps) that force
//     update-from / update-to / firstprivate decisions,
//   - cross-function kernels behind pointer parameters with call-site
//     constant extents (the hotspot `advance()` motif),
//   - provable constant-trip outer loops, data-dependent guards and
//     dynamic-trip while loops (which flip `provableTrips` off, exactly the
//     programs the predicted==simulated oracle invariant must skip),
//   - optional multi-TU splits (helpers moved behind extern globals and
//     prototypes, the Project-layer motif) whose concatenation in link
//     order is one valid single-TU program.
//
// The PRNG is an own splitmix64: std::uniform_int_distribution is not
// pinned across standard libraries, and the golden corpus (tests/gen/)
// asserts byte-identical regeneration across platforms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ompdart::gen {

/// Generator knobs. Defaults produce the mix the fuzz gate and the golden
/// corpus use; narrowing them (e.g. `allowDynamicTrips = false`) restricts
/// the grammar for targeted campaigns.
struct GenOptions {
  unsigned minArrays = 2;
  unsigned maxArrays = 4;
  unsigned minSegments = 3;
  unsigned maxSegments = 8;
  /// Emit int arrays as well as double arrays.
  bool allowIntArrays = true;
  /// Emit the global config struct + kernels reading its fields.
  bool allowStructs = true;
  /// Emit cross-function kernels behind pointer parameters.
  bool allowPointerHelpers = true;
  /// Emit dynamic-trip while loops and data-dependent guards (programs
  /// using them report `provableTrips == false`).
  bool allowDynamicTrips = true;
  /// Emit two-TU splits (helpers in a second TU behind extern globals).
  bool allowMultiTu = true;
};

/// Shape counters recorded per program (manifest metadata + fuzz stats).
struct ProgramStats {
  unsigned arrays = 0;
  unsigned kernels = 0;      ///< kernel segments incl. in-helper kernels
  unsigned hostSegments = 0; ///< host read/write/bump segments
  bool usesStruct = false;
  bool usesIntArrays = false;
  bool usesPointerHelper = false;
  bool usesReduction = false;
  bool dynamicLoop = false;   ///< while-loop wrapper present
  bool guardedKernel = false; ///< data-dependent guard present
};

struct GeneratedTu {
  std::string name; ///< e.g. "gen-000007-main.c"
  std::string source;
};

/// One generated program. `tus` is in link order: concatenating the
/// sources yields a single valid translation unit (the parser unifies the
/// extern/defining global declarations), which is what the oracle executes.
struct GeneratedProgram {
  std::uint64_t seed = 0;
  std::string name; ///< "gen-<seed, zero-padded>"
  std::vector<GeneratedTu> tus;
  /// Every loop trip and kernel execution count in this program is
  /// statically provable: the oracle's predicted==simulated invariant
  /// applies. Dynamic-trip loops and data-dependent guards clear this.
  bool provableTrips = true;
  ProgramStats stats;

  [[nodiscard]] bool multiTu() const { return tus.size() > 1; }
  /// The TU sources concatenated in link order (one runnable program).
  [[nodiscard]] std::string combined() const;
};

/// Generates the program for one seed. Deterministic: equal (seed, options)
/// always produce byte-identical output.
[[nodiscard]] GeneratedProgram generateProgram(std::uint64_t seed,
                                               const GenOptions &options = {});

/// Generates `count` programs for seeds baseSeed, baseSeed+1, ...
[[nodiscard]] std::vector<GeneratedProgram>
generateCorpus(std::uint64_t baseSeed, unsigned count,
               const GenOptions &options = {});

// ---------------------------------------------------------------------------
// Scale projects (plan-server benchmarking)
// ---------------------------------------------------------------------------
//
// A scale project is a deterministic N-TU program with a FLAT call graph:
// TU 0 ("main") calls `stage_k_init()` / `stage_k_run()` for every stage
// TU k in 1..N-1, and each stage TU defines its own global arrays and
// offload kernels, touching nothing from any other stage. The flat shape
// keeps the whole-program link fixed point shallow no matter how large N
// grows (call depth 2, far under the link pass cap) while still giving the
// plan server N independent planning problems plus one TU — main — whose
// imports cover every stage summary.
//
// That import edge is the incremental-replan test fixture: re-emitting one
// stage with a different `variant` changes that stage's kernel access
// effects (a summary-visible fact), so a replan must re-plan exactly the
// edited stage + main; a comment-only edit changes the source hash but not
// the summary, so exactly the edited stage replans. All trips are provable
// and the TU concatenation in index order is one valid single-TU program,
// like every other generator output.

/// Emits one TU of a scale project. Index 0 is main (ignores `variant`);
/// indices 1..tuCount-1 are stages. Odd `variant` values flip the stage's
/// main kernel from map (read a, write b) to an in-place update of a — a
/// summary-visible fact edit (a gains a device write) that leaves the TU's
/// shape and array set untouched. Deterministic in (seed, index, tuCount,
/// variant).
[[nodiscard]] GeneratedTu generateScaleTu(std::uint64_t seed, unsigned index,
                                          unsigned tuCount,
                                          unsigned variant = 0);

/// Assembles the full project (all TUs at variant 0). `tuCount` is clamped
/// to at least 2 (main + one stage).
[[nodiscard]] GeneratedProgram generateScaleProject(std::uint64_t seed,
                                                    unsigned tuCount);

/// splitmix64 — the pinned PRNG behind the generator (exposed so tests can
/// assert the stream itself never drifts).
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform-enough pick in [lo, hi] (inclusive); lo when the range is
  /// degenerate.
  int pick(int lo, int hi) {
    if (hi <= lo)
      return lo;
    return lo + static_cast<int>(next() % static_cast<std::uint64_t>(
                                              hi - lo + 1));
  }
  bool chance(int percent) { return pick(1, 100) <= percent; }

private:
  std::uint64_t state_;
};

} // namespace ompdart::gen
