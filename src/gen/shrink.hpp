// Greedy statement-deletion shrinker for oracle failures.
//
// Given a failing program and a predicate ("this source still reproduces
// the failure"), the shrinker repeatedly deletes the largest statement
// whose removal keeps the predicate true, until no single deletion
// survives. Deletion is textual: the statement's source range is blanked
// (newlines preserved, a lone `;` left behind so the surrounding syntax
// stays a statement) and the candidate re-parsed through the predicate —
// removals that break the program are simply rejected, so the shrinker
// needs no semantic knowledge beyond the parser's statement ranges. Whole
// non-main function definitions are candidates too, which is how dead
// helpers disappear once their last call site is deleted.
//
// The result is the classic delta-debugging-lite minimal repro: every
// remaining statement is load-bearing for the failure.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ompdart::gen {

struct ShrinkOptions {
  /// Abort guard: maximum predicate evaluations.
  unsigned maxAttempts = 6000;
  /// Maximum accepted deletions (each one re-parses the program).
  unsigned maxDeletions = 2000;
};

struct ShrinkResult {
  std::string source; ///< the minimized program
  unsigned originalStatements = 0;
  unsigned finalStatements = 0;
  unsigned attempts = 0;  ///< predicate evaluations
  unsigned deletions = 0; ///< accepted removals
  [[nodiscard]] bool reduced() const {
    return finalStatements < originalStatements;
  }
  /// final/original statement ratio (1.0 when nothing shrank).
  [[nodiscard]] double ratio() const {
    return originalStatements > 0
               ? static_cast<double>(finalStatements) /
                     static_cast<double>(originalStatements)
               : 1.0;
  }
};

/// True when `candidate` still reproduces the failure being minimized. The
/// predicate owns all validity checking: it must return false for programs
/// that no longer parse or run.
using ShrinkPredicate = std::function<bool(const std::string &candidate)>;

/// Minimizes `source` under `stillFails`. `source` itself must satisfy the
/// predicate; when it does not (or does not parse), it is returned
/// unchanged.
[[nodiscard]] ShrinkResult shrinkProgram(const std::string &source,
                                         const ShrinkPredicate &stillFails,
                                         const ShrinkOptions &options = {});

/// Number of non-compound statements in the program (0 when parsing
/// fails) — the metric behind ShrinkResult's statement counts.
[[nodiscard]] unsigned countStatements(const std::string &source);

} // namespace ompdart::gen
