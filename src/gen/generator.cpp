#include "gen/generator.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ompdart::gen {

namespace {

struct ArrayInfo {
  std::string name;
  int extent = 0;
  bool isInt = false;
  bool unused = false; ///< init + tail only; never touched by segments
};

/// Everything one seed decides up front: enabled features, array shapes,
/// wrapper kind and the segment sequence. Emission is a pure function of
/// this plan, which keeps the TU split and the combined program in sync.
struct ProgramPlan {
  std::vector<ArrayInfo> arrays;
  bool useStruct = false;
  bool useFlag = false;      ///< global int flag[1] guarding a kernel
  bool useDevHelper = false; ///< mixv() called from kernel bodies
  bool useStage = false;     ///< kernel behind pointer params
  bool useHostSum = false;
  bool useHostFill = false;
  bool multiTu = false;
  enum class Wrapper { None, For, While } wrapper = Wrapper::None;
  int wrapperTrips = 1;
  struct Segment {
    int kind = 0;
    int dst = 0;     ///< array index
    int src = 0;     ///< array index
    int src2 = -1;   ///< optional second read array
    int acc = 0;     ///< reduction accumulator index
    int variant = 0; ///< kernel-body shape selector
    int c = 1;       ///< small literal constant
    /// Host write covers only the first half of the array (exercises the
    /// planner's kill-vs-sync coverage proof).
    bool partial = false;
  };
  std::vector<Segment> segments;
};

enum SegmentKind {
  kKernelMap = 0,    ///< dst[i] = f(src[i], scale, ...)
  kKernelAccum,      ///< dst[i] += src[i] * c (read-write)
  kKernelInt,        ///< int-array kernel
  kKernelReduction,  ///< reduction(+: accK) into a host-read scalar
  kHostRead,         ///< checksum += arr[i] on the host
  kHostWrite,        ///< arr[i] = ... on the host
  kScalarBump,       ///< scale = scale + eps
  kStructWrite,      ///< cfg.scale = cfg.scale + eps
  kStageCall,        ///< stage(arrA, arrB, n, scale)
  kHostFillCall,     ///< host_fill(arr, n, c)
  kHostSumCall,      ///< checksum += host_sum(arr, n)
  kGuardedKernel,    ///< if (flag[0] == 0) { kernel }  (unprovable)
  kSegmentKinds,
};

/// Picks a usable (non-`unused`) array index with the requested intness.
int pickArray(SplitMix64 &rng, const ProgramPlan &plan, bool wantInt) {
  std::vector<int> candidates;
  for (std::size_t i = 0; i < plan.arrays.size(); ++i)
    if (plan.arrays[i].isInt == wantInt && !plan.arrays[i].unused)
      candidates.push_back(static_cast<int>(i));
  if (candidates.empty())
    return 0;
  return candidates[static_cast<std::size_t>(
      rng.pick(0, static_cast<int>(candidates.size()) - 1))];
}

ProgramPlan makePlan(SplitMix64 &rng, const GenOptions &options) {
  ProgramPlan plan;

  const int arrayCount = rng.pick(static_cast<int>(options.minArrays),
                                  static_cast<int>(options.maxArrays));
  static const int kExtents[] = {12, 16, 20, 24, 32, 40, 48};
  for (int a = 0; a < arrayCount; ++a) {
    ArrayInfo array;
    array.extent = kExtents[rng.pick(0, 6)];
    // The first two arrays stay double so kernels, reductions and pointer
    // helpers always have typed operands available.
    array.isInt = options.allowIntArrays && a >= 2 && rng.chance(40);
    array.name = (array.isInt ? "iarr" : "arr") + std::to_string(a);
    plan.arrays.push_back(array);
  }
  // Occasionally one extra array that no segment touches: the planner must
  // leave it unmapped.
  if (rng.chance(25)) {
    ArrayInfo array;
    array.extent = kExtents[rng.pick(0, 6)];
    array.name = "cold" + std::to_string(plan.arrays.size());
    array.unused = true;
    plan.arrays.push_back(array);
  }

  plan.multiTu = options.allowMultiTu && rng.chance(25);
  // A struct definition cannot repeat across concatenated TUs, so the
  // multi-TU shape forgoes the struct motif.
  plan.useStruct = options.allowStructs && !plan.multiTu && rng.chance(50);
  plan.useDevHelper = rng.chance(40);
  plan.useStage = options.allowPointerHelpers && rng.chance(45);
  plan.useHostSum = options.allowPointerHelpers && rng.chance(35);
  plan.useHostFill = options.allowPointerHelpers && rng.chance(30);

  const bool dynamicAllowed = options.allowDynamicTrips;
  const int wrapperRoll = rng.pick(0, 99);
  if (wrapperRoll < 40)
    plan.wrapper = ProgramPlan::Wrapper::None;
  else if (wrapperRoll < 75 || !dynamicAllowed)
    plan.wrapper = ProgramPlan::Wrapper::For;
  else
    plan.wrapper = ProgramPlan::Wrapper::While;
  plan.wrapperTrips = rng.pick(2, 4);

  const bool guardAllowed = dynamicAllowed && rng.chance(20);
  plan.useFlag = guardAllowed;

  const int segmentCount = rng.pick(static_cast<int>(options.minSegments),
                                    static_cast<int>(options.maxSegments));
  bool sawKernel = false;
  for (int s = 0; s < segmentCount; ++s) {
    ProgramPlan::Segment seg;
    // Weighted kind choice over the enabled grammar.
    std::vector<int> kinds = {kKernelMap, kKernelMap, kKernelAccum,
                              kKernelReduction, kHostRead, kHostWrite,
                              kScalarBump};
    if (options.allowIntArrays)
      kinds.push_back(kKernelInt);
    if (plan.useStruct)
      kinds.push_back(kStructWrite);
    if (plan.useStage)
      kinds.push_back(kStageCall);
    if (plan.useHostFill)
      kinds.push_back(kHostFillCall);
    if (plan.useHostSum)
      kinds.push_back(kHostSumCall);
    if (plan.useFlag)
      kinds.push_back(kGuardedKernel);
    seg.kind = kinds[static_cast<std::size_t>(
        rng.pick(0, static_cast<int>(kinds.size()) - 1))];

    bool hasIntArray = false;
    for (const ArrayInfo &array : plan.arrays)
      hasIntArray = hasIntArray || (array.isInt && !array.unused);
    if (seg.kind == kKernelInt && !hasIntArray)
      seg.kind = kKernelMap; // no int arrays materialized for this seed
    seg.dst = pickArray(rng, plan, seg.kind == kKernelInt);
    seg.src = pickArray(rng, plan, seg.kind == kKernelInt);
    if (rng.chance(30))
      seg.src2 = pickArray(rng, plan, false);
    seg.acc = s % 3;
    seg.variant = rng.pick(0, 3);
    seg.c = rng.pick(1, 9);
    // Partial host overwrites force the planner to prove (or refuse) the
    // kill. Kept out of wrapper loops: repeated partial-write/kernel
    // ping-pong makes the paper's always-extend-region strategy pay more
    // syncs than the implicit baseline — a known model limitation, not a
    // plan-safety bug.
    seg.partial = seg.kind == kHostWrite &&
                  plan.wrapper == ProgramPlan::Wrapper::None &&
                  rng.chance(35);
    if (seg.kind <= kKernelReduction || seg.kind == kStageCall ||
        seg.kind == kGuardedKernel)
      sawKernel = true;
    plan.segments.push_back(seg);
  }
  if (!sawKernel) {
    // Every program offloads at least once.
    ProgramPlan::Segment seg;
    seg.kind = kKernelMap;
    seg.dst = pickArray(rng, plan, false);
    seg.src = pickArray(rng, plan, false);
    seg.c = rng.pick(1, 9);
    plan.segments.insert(plan.segments.begin(), seg);
  }
  // The guard array only matters if a guarded kernel was actually drawn.
  bool guardDrawn = false;
  for (const ProgramPlan::Segment &seg : plan.segments)
    guardDrawn = guardDrawn || seg.kind == kGuardedKernel;
  plan.useFlag = guardDrawn;
  return plan;
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

std::string literal(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.4f", value);
  return buffer;
}

int kernelTrip(const ProgramPlan &plan, const ProgramPlan::Segment &seg) {
  int trip = std::min(plan.arrays[static_cast<std::size_t>(seg.dst)].extent,
                      plan.arrays[static_cast<std::size_t>(seg.src)].extent);
  if (seg.src2 >= 0)
    trip = std::min(trip,
                    plan.arrays[static_cast<std::size_t>(seg.src2)].extent);
  return trip;
}

void emitKernelBody(std::ostringstream &out, const std::string &indent,
                    const ProgramPlan &plan, const ProgramPlan::Segment &seg) {
  const ArrayInfo &dst = plan.arrays[static_cast<std::size_t>(seg.dst)];
  const ArrayInfo &src = plan.arrays[static_cast<std::size_t>(seg.src)];
  const int trip = kernelTrip(plan, seg);
  out << indent << "#pragma omp target teams distribute parallel for\n";
  out << indent << "for (int i = 0; i < " << trip << "; ++i) {\n";
  const std::string in2 = indent + "  ";
  const std::string srcRef = src.name + "[i]";
  const std::string dstRef = dst.name + "[i]";
  std::string extra;
  if (seg.src2 >= 0)
    extra = " + " + plan.arrays[static_cast<std::size_t>(seg.src2)].name +
            "[i] * 0.25";
  switch (seg.variant) {
  case 0:
    out << in2 << dstRef << " = " << srcRef << " * scale + "
        << literal(seg.c * 0.5) << extra << ";\n";
    break;
  case 1:
    if (plan.useStruct)
      out << in2 << dstRef << " = " << srcRef << " * cfg.scale + cfg.bias"
          << extra << ";\n";
    else
      out << in2 << dstRef << " = " << srcRef << " + "
          << literal(seg.c * 0.25) << extra << ";\n";
    break;
  case 2:
    // Data-parallel branch: divergent writes, still deterministic.
    out << in2 << "if (" << srcRef << " > " << literal(seg.c * 0.1)
        << ") {\n";
    out << in2 << "  " << dstRef << " = " << srcRef << " - "
        << literal(seg.c * 0.125) << ";\n";
    out << in2 << "} else {\n";
    out << in2 << "  " << dstRef << " = " << srcRef << " * scale" << extra
        << ";\n";
    out << in2 << "}\n";
    break;
  default:
    if (plan.useDevHelper)
      out << in2 << dstRef << " = mixv(" << srcRef << ", scale)" << extra
          << ";\n";
    else
      out << in2 << dstRef << " = " << srcRef << " * "
          << literal(1.0 + seg.c * 0.0625) << extra << ";\n";
    break;
  }
  out << indent << "}\n";
}

void emitSegment(std::ostringstream &out, const std::string &indent,
                 const ProgramPlan &plan, const ProgramPlan::Segment &seg) {
  const ArrayInfo &dst = plan.arrays[static_cast<std::size_t>(seg.dst)];
  const ArrayInfo &src = plan.arrays[static_cast<std::size_t>(seg.src)];
  switch (seg.kind) {
  case kKernelMap:
    emitKernelBody(out, indent, plan, seg);
    break;
  case kKernelAccum: {
    const int trip = kernelTrip(plan, seg);
    out << indent << "#pragma omp target teams distribute parallel for\n";
    out << indent << "for (int i = 0; i < " << trip << "; ++i) {\n";
    out << indent << "  " << dst.name << "[i] += " << src.name << "[i] * "
        << literal(seg.c * 0.0625) << ";\n";
    out << indent << "}\n";
    break;
  }
  case kKernelInt: {
    const int trip = kernelTrip(plan, seg);
    out << indent << "#pragma omp target teams distribute parallel for\n";
    out << indent << "for (int i = 0; i < " << trip << "; ++i) {\n";
    if (seg.variant % 2 == 0)
      out << indent << "  " << dst.name << "[i] = " << dst.name << "[i] + "
          << seg.c << ";\n";
    else
      out << indent << "  " << dst.name << "[i] = " << src.name << "[i] * "
          << (1 + seg.c % 3) << " + i % 5;\n";
    out << indent << "}\n";
    break;
  }
  case kKernelReduction: {
    const std::string acc = "acc" + std::to_string(seg.acc);
    out << indent << acc << " = 0.0;\n";
    out << indent
        << "#pragma omp target teams distribute parallel for reduction(+: "
        << acc << ")\n";
    out << indent << "for (int i = 0; i < " << src.extent << "; ++i) {\n";
    out << indent << "  " << acc << " += " << src.name << "[i] * "
        << literal(seg.c * 0.03125) << ";\n";
    out << indent << "}\n";
    out << indent << "checksum += " << acc << ";\n";
    break;
  }
  case kHostRead:
    out << indent << "for (int i = 0; i < " << src.extent << "; ++i) {\n";
    out << indent << "  checksum += " << src.name << "[i];\n";
    out << indent << "}\n";
    break;
  case kHostWrite: {
    const int span = seg.partial ? dst.extent / 2 : dst.extent;
    out << indent << "for (int i = 0; i < " << span << "; ++i) {\n";
    if (dst.isInt)
      out << indent << "  " << dst.name << "[i] = i % 7 + " << seg.c
          << ";\n";
    else
      out << indent << "  " << dst.name << "[i] = i * 0.25 + "
          << literal(seg.c * 0.5) << ";\n";
    out << indent << "}\n";
    break;
  }
  case kScalarBump:
    out << indent << "scale = scale + " << literal(seg.c * 0.015625)
        << ";\n";
    break;
  case kStructWrite:
    out << indent << "cfg."
        << (seg.variant % 2 == 0 ? "scale" : "bias") << " = cfg."
        << (seg.variant % 2 == 0 ? "scale" : "bias") << " + "
        << literal(seg.c * 0.0625) << ";\n";
    break;
  case kStageCall: {
    // stage() expects double arrays; re-aim int picks at double arrays
    // deterministically (first double array is always arr0).
    const ArrayInfo &a = src.isInt ? plan.arrays[0] : src;
    const ArrayInfo &b = dst.isInt ? plan.arrays[1] : dst;
    const int trip = std::min(a.extent, b.extent);
    out << indent << "stage(" << a.name << ", " << b.name << ", " << trip
        << ", scale);\n";
    break;
  }
  case kHostFillCall: {
    const ArrayInfo &a = dst.isInt ? plan.arrays[0] : dst;
    out << indent << "host_fill(" << a.name << ", " << a.extent << ", "
        << literal(seg.c * 0.375) << ");\n";
    break;
  }
  case kHostSumCall: {
    const ArrayInfo &a = src.isInt ? plan.arrays[1] : src;
    out << indent << "checksum += host_sum(" << a.name << ", " << a.extent
        << ");\n";
    break;
  }
  case kGuardedKernel: {
    out << indent << "if (flag[0] == 0) {\n";
    ProgramPlan::Segment inner = seg;
    inner.kind = kKernelMap;
    if (plan.arrays[static_cast<std::size_t>(inner.dst)].isInt)
      inner.dst = 0;
    if (plan.arrays[static_cast<std::size_t>(inner.src)].isInt)
      inner.src = 1;
    emitKernelBody(out, indent + "  ", plan, inner);
    out << indent << "}\n";
    break;
  }
  default:
    break;
  }
}

void emitGlobals(std::ostringstream &out, const ProgramPlan &plan,
                 bool asExtern) {
  const char *prefix = asExtern ? "extern " : "";
  if (plan.useStruct && !asExtern)
    out << "struct cfg_t {\n  double scale;\n  double bias;\n};\n\n";
  for (const ArrayInfo &array : plan.arrays)
    out << prefix << (array.isInt ? "int " : "double ") << array.name << "["
        << array.extent << "];\n";
  if (plan.useStruct)
    out << prefix << "struct cfg_t cfg;\n";
  if (plan.useFlag)
    out << prefix << "int flag[1];\n";
  out << "\n";
}

void emitHelperDefs(std::ostringstream &out, const ProgramPlan &plan,
                    std::uint64_t seed) {
  if (plan.useDevHelper) {
    out << "double mixv(double a, double b) {\n";
    out << "  if (a > b) {\n    return a - b;\n  }\n";
    out << "  return a + b * 0.5;\n}\n\n";
  }
  if (plan.useHostSum) {
    out << "double host_sum(double *a, int n) {\n";
    out << "  double s = 0.0;\n";
    out << "  for (int i = 0; i < n; ++i) {\n    s = s + a[i];\n  }\n";
    out << "  return s;\n}\n\n";
  }
  if (plan.useHostFill) {
    out << "void host_fill(double *a, int n, double v) {\n";
    out << "  for (int i = 0; i < n; ++i) {\n";
    out << "    a[i] = v + i * 0.5;\n  }\n}\n\n";
  }
  if (plan.useStage) {
    out << "void stage(double *src, double *dst, int n, double w) {\n";
    out << "  #pragma omp target teams distribute parallel for\n";
    out << "  for (int i = 0; i < n; ++i) {\n";
    out << "    dst[i] = src[i] * w + 0.75;\n  }\n}\n\n";
  }
  out << "void init_data() {\n";
  out << "  srand(" << (1000 + seed % 9000) << ");\n";
  for (const ArrayInfo &array : plan.arrays) {
    out << "  for (int i = 0; i < " << array.extent << "; ++i) {\n";
    if (array.isInt)
      out << "    " << array.name << "[i] = rand() % 50;\n";
    else
      out << "    " << array.name
          << "[i] = (double)(rand() % 100) * 0.01 + 0.5;\n";
    out << "  }\n";
  }
  if (plan.useStruct)
    out << "  cfg.scale = 1.25;\n  cfg.bias = 0.5;\n";
  if (plan.useFlag)
    out << "  flag[0] = 0;\n";
  out << "}\n\n";
}

void emitHelperProtos(std::ostringstream &out, const ProgramPlan &plan) {
  if (plan.useDevHelper)
    out << "double mixv(double a, double b);\n";
  if (plan.useHostSum)
    out << "double host_sum(double *a, int n);\n";
  if (plan.useHostFill)
    out << "void host_fill(double *a, int n, double v);\n";
  if (plan.useStage)
    out << "void stage(double *src, double *dst, int n, double w);\n";
  out << "void init_data();\n\n";
}

void emitMain(std::ostringstream &out, const ProgramPlan &plan) {
  out << "int main() {\n";
  out << "  init_data();\n";
  out << "  double checksum = 0.0;\n";
  out << "  double scale = 1.5;\n";
  out << "  double acc0 = 0.0;\n  double acc1 = 0.0;\n"
         "  double acc2 = 0.0;\n";
  out << "  double tail = 0.0;\n";
  std::string indent = "  ";
  if (plan.wrapper == ProgramPlan::Wrapper::While)
    out << "  int iter = 0;\n";
  if (plan.wrapper == ProgramPlan::Wrapper::For) {
    out << "  for (int t = 0; t < " << plan.wrapperTrips << "; ++t) {\n";
    indent = "    ";
  } else if (plan.wrapper == ProgramPlan::Wrapper::While) {
    out << "  while (iter < " << plan.wrapperTrips << ") {\n";
    indent = "    ";
  }
  for (const ProgramPlan::Segment &seg : plan.segments)
    emitSegment(out, indent, plan, seg);
  if (plan.wrapper == ProgramPlan::Wrapper::While)
    out << indent << "iter = iter + 1;\n";
  if (plan.wrapper != ProgramPlan::Wrapper::None)
    out << "  }\n";

  // Tail: make the final state of every mapped object observable, one
  // printf per array plus the scalars, so a single wrong element cannot
  // hide behind a compensating aggregate.
  out << "  checksum += acc0 + acc1 + acc2;\n";
  for (const ArrayInfo &array : plan.arrays) {
    out << "  tail = 0.0;\n";
    out << "  for (int i = 0; i < " << array.extent << "; ++i) {\n";
    out << "    tail += " << array.name << "[i];\n  }\n";
    out << "  printf(\"" << array.name << "=%.6f\\n\", tail);\n";
  }
  if (plan.useStruct)
    out << "  printf(\"cfg=%.6f %.6f\\n\", cfg.scale, cfg.bias);\n";
  out << "  printf(\"scale=%.6f checksum=%.6f\\n\", scale, checksum);\n";
  out << "  return 0;\n}\n";
}

} // namespace

std::string GeneratedProgram::combined() const {
  std::string out;
  for (const GeneratedTu &tu : tus)
    out += tu.source;
  return out;
}

GeneratedProgram generateProgram(std::uint64_t seed,
                                 const GenOptions &options) {
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ull + 0x243f6a8885a308d3ull);
  const ProgramPlan plan = makePlan(rng, options);

  GeneratedProgram program;
  program.seed = seed;
  char nameBuffer[32];
  std::snprintf(nameBuffer, sizeof nameBuffer, "gen-%06llu",
                static_cast<unsigned long long>(seed));
  program.name = nameBuffer;

  program.provableTrips = plan.wrapper != ProgramPlan::Wrapper::While;
  for (const ProgramPlan::Segment &seg : plan.segments) {
    if (seg.kind == kGuardedKernel)
      program.provableTrips = false;
    if (seg.kind <= kKernelReduction || seg.kind == kStageCall ||
        seg.kind == kGuardedKernel)
      ++program.stats.kernels;
    else if (seg.kind == kHostRead || seg.kind == kHostWrite ||
             seg.kind == kScalarBump || seg.kind == kHostFillCall ||
             seg.kind == kHostSumCall || seg.kind == kStructWrite)
      ++program.stats.hostSegments;
    program.stats.usesReduction =
        program.stats.usesReduction || seg.kind == kKernelReduction;
    program.stats.guardedKernel =
        program.stats.guardedKernel || seg.kind == kGuardedKernel;
  }
  program.stats.arrays = static_cast<unsigned>(plan.arrays.size());
  program.stats.usesStruct = plan.useStruct;
  program.stats.usesPointerHelper =
      plan.useStage || plan.useHostSum || plan.useHostFill;
  program.stats.dynamicLoop = plan.wrapper == ProgramPlan::Wrapper::While;
  for (const ArrayInfo &array : plan.arrays)
    program.stats.usesIntArrays = program.stats.usesIntArrays || array.isInt;

  if (plan.multiTu) {
    // main TU: globals + prototypes + main. helpers TU: extern globals +
    // helper definitions. Concatenation in this order is one valid TU (the
    // parser unifies extern/defining globals and prototype/definition
    // functions).
    std::ostringstream mainTu;
    emitGlobals(mainTu, plan, /*asExtern=*/false);
    emitHelperProtos(mainTu, plan);
    emitMain(mainTu, plan);
    std::ostringstream helperTu;
    emitGlobals(helperTu, plan, /*asExtern=*/true);
    emitHelperDefs(helperTu, plan, seed);
    program.tus.push_back({program.name + "-main.c", mainTu.str()});
    program.tus.push_back({program.name + "-helpers.c", helperTu.str()});
  } else {
    std::ostringstream tu;
    emitGlobals(tu, plan, /*asExtern=*/false);
    emitHelperDefs(tu, plan, seed);
    emitMain(tu, plan);
    program.tus.push_back({program.name + ".c", tu.str()});
  }
  return program;
}

GeneratedTu generateScaleTu(std::uint64_t seed, unsigned index,
                            unsigned tuCount, unsigned variant) {
  if (tuCount < 2)
    tuCount = 2;
  char nameBuffer[48];
  std::ostringstream out;

  if (index == 0) {
    std::snprintf(nameBuffer, sizeof nameBuffer, "scale-%06llu-main.c",
                  static_cast<unsigned long long>(seed));
    for (unsigned k = 1; k < tuCount; ++k) {
      out << "void stage_" << k << "_init();\n";
      out << "double stage_" << k << "_run(double w);\n";
    }
    out << "\nint main() {\n";
    out << "  double checksum = 0.0;\n";
    out << "  double scale = 1.5;\n";
    for (unsigned k = 1; k < tuCount; ++k)
      out << "  stage_" << k << "_init();\n";
    for (unsigned k = 1; k < tuCount; ++k)
      out << "  checksum += stage_" << k << "_run(scale);\n";
    out << "  printf(\"checksum=%.6f\\n\", checksum);\n";
    out << "  return 0;\n}\n";
    return {nameBuffer, out.str()};
  }

  // One stage: own globals, one or two offload kernels, a host read-back.
  // The rng draws depend only on (seed, index) so `variant` moves nothing
  // but the trip counts — the minimal summary-visible fact edit.
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ull + index * 0xd1342543de82ef95ull +
                 0x243f6a8885a308d3ull);
  static const int kExtents[] = {16, 20, 24, 32, 40, 48, 64};
  const int extent = kExtents[rng.pick(0, 6)];
  const int c = rng.pick(1, 9);
  const bool accumKernel = rng.chance(40);
  const bool hostBump = rng.chance(30);
  // Odd variants flip the main kernel from map (read a, write b) to an
  // in-place update of a (read-write a): array `a` gains a device write the
  // even variant never has — also under the optional accum kernel, which
  // only reads a — so the stage's portable summary (the per-global access
  // effects main imports) is guaranteed to change while the TU's shape and
  // array set stay fixed.
  const bool inPlaceKernel = variant % 2u == 1;
  const int trip = extent;

  std::snprintf(nameBuffer, sizeof nameBuffer, "scale-%06llu-stage%04u.c",
                static_cast<unsigned long long>(seed), index);
  const std::string a = "s" + std::to_string(index) + "_a";
  const std::string b = "s" + std::to_string(index) + "_b";
  out << "double " << a << "[" << extent << "];\n";
  out << "double " << b << "[" << extent << "];\n\n";

  out << "void stage_" << index << "_init() {\n";
  out << "  for (int i = 0; i < " << extent << "; ++i) {\n";
  out << "    " << a << "[i] = i * 0.25 + " << literal(c * 0.5) << ";\n";
  out << "    " << b << "[i] = 0.0;\n";
  out << "  }\n}\n\n";

  out << "double stage_" << index << "_run(double w) {\n";
  out << "  double acc = 0.0;\n";
  if (hostBump)
    out << "  w = w + " << literal(c * 0.015625) << ";\n";
  out << "  #pragma omp target teams distribute parallel for\n";
  out << "  for (int i = 0; i < " << trip << "; ++i) {\n";
  if (inPlaceKernel)
    out << "    " << a << "[i] = " << a << "[i] * w + " << literal(c * 0.25)
        << ";\n";
  else
    out << "    " << b << "[i] = " << a << "[i] * w + " << literal(c * 0.25)
        << ";\n";
  out << "  }\n";
  if (accumKernel) {
    out << "  #pragma omp target teams distribute parallel for\n";
    out << "  for (int i = 0; i < " << trip << "; ++i) {\n";
    out << "    " << b << "[i] += " << a << "[i] * "
        << literal(c * 0.0625) << ";\n";
    out << "  }\n";
  }
  out << "  for (int i = 0; i < " << trip << "; ++i) {\n";
  out << "    acc += " << b << "[i];\n";
  out << "  }\n";
  out << "  return acc;\n}\n";
  return {nameBuffer, out.str()};
}

GeneratedProgram generateScaleProject(std::uint64_t seed, unsigned tuCount) {
  if (tuCount < 2)
    tuCount = 2;
  GeneratedProgram program;
  program.seed = seed;
  char nameBuffer[32];
  std::snprintf(nameBuffer, sizeof nameBuffer, "scale-%06llu",
                static_cast<unsigned long long>(seed));
  program.name = nameBuffer;
  program.provableTrips = true;
  program.tus.reserve(tuCount);
  for (unsigned index = 0; index < tuCount; ++index)
    program.tus.push_back(generateScaleTu(seed, index, tuCount));
  program.stats.arrays = 2 * (tuCount - 1);
  program.stats.kernels = tuCount - 1; // at least one per stage
  program.stats.hostSegments = tuCount - 1;
  return program;
}

std::vector<GeneratedProgram> generateCorpus(std::uint64_t baseSeed,
                                             unsigned count,
                                             const GenOptions &options) {
  std::vector<GeneratedProgram> corpus;
  corpus.reserve(count);
  for (unsigned i = 0; i < count; ++i)
    corpus.push_back(generateProgram(baseSeed + i, options));
  return corpus;
}

} // namespace ompdart::gen
